// Synthetic dataset generators (paper §VI substitutions — see DESIGN.md §2).
//
// The paper evaluates on MONDIAL (small, highly structured), a WordNet RDF
// excerpt (medium, flat, highly repetitive) and DMOZ structure/content dumps
// (large/very large, flat).  Those exact files are not redistributable, so we
// generate documents with the same shape parameters: element counts, depth,
// label vocabulary and the child orderings that make the paper's four query
// classes meaningful ("future" vs "past" structural conditions).
//
// All generators stream events directly into an EventSink, so paper-scale
// documents (millions of elements) never need to be materialized.

#ifndef SPEX_XML_GENERATORS_H_
#define SPEX_XML_GENERATORS_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "xml/stream_event.h"

namespace spex {

// Summary of a generated document.
struct GeneratorStats {
  int64_t elements = 0;    // number of element nodes
  int64_t events = 0;      // number of document messages emitted
  int max_depth = 0;       // element nesting depth
  int64_t text_bytes = 0;  // bytes of character data
};

// MONDIAL-like geographical database: depth 5, ~24k elements at scale 1.0.
//   mondial / country ( name, province* ( name, city* ( name ) ), religions* )
// About 30% of countries have no province children, so the qualifier
// [province] is selective.  `name` precedes `province` (future condition) and
// `religions` follows it (past condition), as required by query classes 2/4.
GeneratorStats GenerateMondialLike(uint64_t seed, double scale,
                                   EventSink* sink);

// WordNet-like lexical database: flat, depth 3, ~208k elements at scale 1.0.
//   wordnet / Noun ( id, wordForm+, gloss ) — ~20% of Nouns lack wordForm.
GeneratorStats GenerateWordnetLike(uint64_t seed, double scale,
                                   EventSink* sink);

// DMOZ-like web directory: flat, depth 3.  At scale 1.0 the structure variant
// has ~3.94M elements (paper: 300 MB) and the content variant ~13.2M elements
// (paper: 1 GB).  `content=true` adds description/link children and longer
// text.  ~40% of Topics have an editor; newsGroup follows editor.
GeneratorStats GenerateDmozLike(uint64_t seed, double scale, bool content,
                                EventSink* sink);

// Fully random labeled tree, used by the property-based differential tests.
struct RandomTreeOptions {
  int max_depth = 6;
  int max_children = 4;
  int64_t max_elements = 200;
  std::vector<std::string> labels = {"a", "b", "c"};
  double text_probability = 0.0;
  std::string root_label = "r";
};
GeneratorStats GenerateRandomTree(uint64_t seed, const RandomTreeOptions& opts,
                                  EventSink* sink);

// A document that is a single chain of `depth` nested elements, with labels
// cycling through `labels`; used by the depth/memory ablation (E5) where the
// §V bounds are functions of the stream depth d.
GeneratorStats GenerateDeepChain(int depth, const std::vector<std::string>& labels,
                                 EventSink* sink);

// A flat document with `count` children labeled `child` under root `root`;
// used by the stream-size/time ablation (E6).
GeneratorStats GenerateWideFlat(int64_t count, const std::string& root,
                                const std::string& child, EventSink* sink);

// Convenience wrapper collecting a generator's output in a vector.
template <typename Fn>
std::vector<StreamEvent> GenerateToVector(Fn&& fn) {
  RecordingEventSink sink;
  fn(&sink);
  return sink.events();
}

// An unbounded source of document messages for the continuous-service /
// SDI scenario (paper §I, §VI "application-generated infinite streams").
// Emits <$> then an endless sequence of <tick> records of bounded depth;
// the document never ends.  Call NextBatch() repeatedly.
class EndlessEventSource {
 public:
  explicit EndlessEventSource(uint64_t seed);

  // Emits the stream preamble (<$> and the opening <feed>).
  void Begin(EventSink* sink);
  // Emits one complete record (a bounded-depth subtree).
  void NextRecord(EventSink* sink);

  int64_t records_emitted() const { return records_; }

 private:
  std::mt19937_64 rng_;
  int64_t records_ = 0;
};

}  // namespace spex

#endif  // SPEX_XML_GENERATORS_H_
