// Serializes a stream of document messages back to XML text.

#ifndef SPEX_XML_XML_WRITER_H_
#define SPEX_XML_XML_WRITER_H_

#include <string>
#include <vector>

#include "xml/stream_event.h"

namespace spex {

struct XmlWriterOptions {
  // If >= 0, pretty-print with this many spaces per nesting level; if < 0,
  // emit a compact single-line serialization.
  int indent = -1;
  // Emit an <?xml version="1.0"?> declaration on kStartDocument.
  bool declaration = false;
  // Serialize "@name" virtual child elements (XmlParserOptions::
  // expose_attributes) back into real attributes, restoring round-trips:
  // <a> <@id> "7" </@id> ...  ->  <a id="7">...
  bool fold_attributes = true;
};

// An EventSink that serializes incoming document messages to an internal
// buffer.  <$> and </$> produce no output (beyond the optional declaration).
class XmlWriter : public EventSink {
 public:
  explicit XmlWriter(XmlWriterOptions options = {});

  void OnEvent(const StreamEvent& event) override;

  // The serialization produced so far.  With fold_attributes (default) the
  // most recent start tag may still be open ("<a" without '>') until the
  // next non-attribute event decides that no attributes follow.
  const std::string& str() const { return out_; }
  void Clear();

  // Escapes '<', '>', '&' in character data.
  static std::string EscapeText(const std::string& text);
  // Escapes '<', '&' and the quote character in attribute values.
  static std::string EscapeAttribute(const std::string& value);

 private:
  void Indent();
  // Closes a start tag left open for possible attribute children.
  void FinishOpenTag();

  XmlWriterOptions options_;
  std::string out_;
  int depth_ = 0;
  bool at_line_start_ = true;
  // A "<name" whose '>' is withheld while @-children may still arrive.
  bool tag_open_ = false;
  // Inside an "@name" virtual element: collect its text as the value.
  bool in_attribute_ = false;
  std::string attribute_name_;
  std::string attribute_value_;
};

// Serializes a complete event vector.
std::string EventsToXml(const std::vector<StreamEvent>& events,
                        XmlWriterOptions options = {});

}  // namespace spex

#endif  // SPEX_XML_XML_WRITER_H_
