#include "xml/generators.h"

#include <algorithm>
#include <cmath>

namespace spex {

namespace {

// Small helper tracking stats while forwarding to the real sink.
class CountingSink : public EventSink {
 public:
  explicit CountingSink(EventSink* inner) : inner_(inner) {}

  void OnEvent(const StreamEvent& event) override {
    ++stats_.events;
    switch (event.kind) {
      case EventKind::kStartElement:
        ++stats_.elements;
        ++depth_;
        stats_.max_depth = std::max(stats_.max_depth, depth_);
        break;
      case EventKind::kEndElement:
        --depth_;
        break;
      case EventKind::kText:
        stats_.text_bytes += static_cast<int64_t>(event.text.size());
        break;
      default:
        break;
    }
    inner_->OnEvent(event);
  }

  const GeneratorStats& stats() const { return stats_; }

 private:
  EventSink* inner_;
  GeneratorStats stats_;
  int depth_ = 0;
};

void Open(EventSink* s, const char* label) {
  s->OnEvent(StreamEvent::StartElement(label));
}
void Close(EventSink* s, const char* label) {
  s->OnEvent(StreamEvent::EndElement(label));
}
void Leaf(EventSink* s, const char* label, std::string text) {
  Open(s, label);
  s->OnEvent(StreamEvent::Text(std::move(text)));
  Close(s, label);
}

std::string SyntheticWord(std::mt19937_64& rng, int min_len, int max_len) {
  static const char* kSyllables[] = {"ka", "ro", "mi", "ta", "lu", "ze",
                                     "an", "pe", "so", "vi", "du", "ne"};
  std::uniform_int_distribution<int> len(min_len, max_len);
  std::uniform_int_distribution<size_t> pick(0, 11);
  std::string out;
  int n = len(rng);
  for (int i = 0; i < n; ++i) out += kSyllables[pick(rng)];
  return out;
}

}  // namespace

GeneratorStats GenerateMondialLike(uint64_t seed, double scale,
                                   EventSink* sink) {
  CountingSink s(sink);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Calibrated so scale 1.0 yields roughly the paper's 24,184 elements with
  // max element depth 5 (mondial/country/province/city/name).
  const int countries = std::max(1, static_cast<int>(230 * scale));
  std::uniform_int_distribution<int> provinces_per_country(2, 20);
  std::uniform_int_distribution<int> cities_per_province(2, 10);
  std::uniform_int_distribution<int> religions_per_country(0, 3);

  s.OnEvent(StreamEvent::StartDocument());
  Open(&s, "mondial");
  for (int c = 0; c < countries; ++c) {
    Open(&s, "country");
    // `name` precedes `province`: for _*.country[province].name the qualifier
    // value is unknown when the candidate answer is met (a "future condition").
    Leaf(&s, "name", SyntheticWord(rng, 2, 4));
    Leaf(&s, "population", std::to_string(rng() % 100000000));
    const bool has_provinces = coin(rng) > 0.3;
    if (has_provinces) {
      int np = provinces_per_country(rng);
      for (int p = 0; p < np; ++p) {
        Open(&s, "province");
        Leaf(&s, "name", SyntheticWord(rng, 2, 3));
        int nc = cities_per_province(rng);
        for (int k = 0; k < nc; ++k) {
          Open(&s, "city");
          Leaf(&s, "name", SyntheticWord(rng, 1, 3));
          Close(&s, "city");
        }
        Close(&s, "province");
      }
    }
    // `religions` follows `province`: for _*.country[province].religions the
    // qualifier is already determined (a "past condition").
    int nr = religions_per_country(rng);
    for (int r = 0; r < nr; ++r) {
      Leaf(&s, "religions", SyntheticWord(rng, 2, 3));
    }
    Close(&s, "country");
  }
  Close(&s, "mondial");
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

GeneratorStats GenerateWordnetLike(uint64_t seed, double scale,
                                   EventSink* sink) {
  CountingSink s(sink);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Roughly 208k elements at scale 1.0: nouns * (1 + ~2.6 children).
  const int64_t nouns = std::max<int64_t>(1, static_cast<int64_t>(58000 * scale));
  std::uniform_int_distribution<int> word_forms(1, 3);

  s.OnEvent(StreamEvent::StartDocument());
  Open(&s, "wordnet");
  for (int64_t n = 0; n < nouns; ++n) {
    Open(&s, "Noun");
    Leaf(&s, "id", std::to_string(n));
    if (coin(rng) > 0.2) {  // ~20% of Nouns lack wordForm: [wordForm] selects
      int nw = word_forms(rng);
      for (int w = 0; w < nw; ++w) {
        Leaf(&s, "wordForm", SyntheticWord(rng, 1, 3));
      }
    }
    if (coin(rng) > 0.5) {
      Leaf(&s, "gloss", SyntheticWord(rng, 4, 8));
    }
    Close(&s, "Noun");
  }
  Close(&s, "wordnet");
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

GeneratorStats GenerateDmozLike(uint64_t seed, double scale, bool content,
                                EventSink* sink) {
  CountingSink s(sink);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // structure: ~3.94M elements at scale 1.0 (topics * ~4.4 children);
  // content:  ~13.2M elements at scale 1.0 (topics * ~9.5 children).
  const int64_t topics = std::max<int64_t>(
      1, static_cast<int64_t>((content ? 1390000 : 900000) * scale));

  s.OnEvent(StreamEvent::StartDocument());
  Open(&s, "RDF");
  for (int64_t t = 0; t < topics; ++t) {
    Open(&s, "Topic");
    Leaf(&s, "Title", SyntheticWord(rng, 2, 4));
    const bool has_editor = coin(rng) > 0.6;  // ~40% of Topics have an editor
    if (has_editor) {
      Leaf(&s, "editor", SyntheticWord(rng, 2, 3));
    }
    if (coin(rng) > 0.5) {
      Leaf(&s, "newsGroup", SyntheticWord(rng, 2, 3));
    }
    if (content) {
      Leaf(&s, "Description", SyntheticWord(rng, 8, 16));
      int nl = static_cast<int>(rng() % 4);
      for (int l = 0; l < nl; ++l) {
        Leaf(&s, "link", SyntheticWord(rng, 3, 6));
      }
      Leaf(&s, "lastUpdate", std::to_string(rng() % 1000000));
    }
    Close(&s, "Topic");
  }
  Close(&s, "RDF");
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

namespace {

void RandomSubtree(std::mt19937_64& rng, const RandomTreeOptions& opts,
                   int depth, int64_t* budget, CountingSink* s) {
  if (*budget <= 0) return;
  std::uniform_int_distribution<size_t> pick_label(0, opts.labels.size() - 1);
  const std::string& label = opts.labels[pick_label(rng)];
  --*budget;
  s->OnEvent(StreamEvent::StartElement(label));
  if (depth < opts.max_depth) {
    std::uniform_int_distribution<int> nkids(0, opts.max_children);
    int n = nkids(rng);
    for (int i = 0; i < n && *budget > 0; ++i) {
      RandomSubtree(rng, opts, depth + 1, budget, s);
    }
  }
  if (opts.text_probability > 0.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < opts.text_probability) {
      s->OnEvent(StreamEvent::Text(SyntheticWord(rng, 1, 2)));
    }
  }
  s->OnEvent(StreamEvent::EndElement(label));
}

}  // namespace

GeneratorStats GenerateRandomTree(uint64_t seed, const RandomTreeOptions& opts,
                                  EventSink* sink) {
  CountingSink s(sink);
  std::mt19937_64 rng(seed);
  s.OnEvent(StreamEvent::StartDocument());
  s.OnEvent(StreamEvent::StartElement(opts.root_label));
  int64_t budget = opts.max_elements;
  std::uniform_int_distribution<int> nkids(1, std::max(1, opts.max_children));
  int n = nkids(rng);
  for (int i = 0; i < n && budget > 0; ++i) {
    RandomSubtree(rng, opts, 2, &budget, &s);
  }
  s.OnEvent(StreamEvent::EndElement(opts.root_label));
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

GeneratorStats GenerateDeepChain(int depth,
                                 const std::vector<std::string>& labels,
                                 EventSink* sink) {
  CountingSink s(sink);
  s.OnEvent(StreamEvent::StartDocument());
  for (int i = 0; i < depth; ++i) {
    s.OnEvent(StreamEvent::StartElement(labels[i % labels.size()]));
  }
  for (int i = depth - 1; i >= 0; --i) {
    s.OnEvent(StreamEvent::EndElement(labels[i % labels.size()]));
  }
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

GeneratorStats GenerateWideFlat(int64_t count, const std::string& root,
                                const std::string& child, EventSink* sink) {
  CountingSink s(sink);
  s.OnEvent(StreamEvent::StartDocument());
  s.OnEvent(StreamEvent::StartElement(root));
  for (int64_t i = 0; i < count; ++i) {
    s.OnEvent(StreamEvent::StartElement(child));
    s.OnEvent(StreamEvent::EndElement(child));
  }
  s.OnEvent(StreamEvent::EndElement(root));
  s.OnEvent(StreamEvent::EndDocument());
  return s.stats();
}

EndlessEventSource::EndlessEventSource(uint64_t seed) : rng_(seed) {}

void EndlessEventSource::Begin(EventSink* sink) {
  sink->OnEvent(StreamEvent::StartDocument());
  sink->OnEvent(StreamEvent::StartElement("feed"));
}

void EndlessEventSource::NextRecord(EventSink* sink) {
  ++records_;
  sink->OnEvent(StreamEvent::StartElement("tick"));
  sink->OnEvent(StreamEvent::StartElement("symbol"));
  sink->OnEvent(StreamEvent::Text(SyntheticWord(rng_, 1, 2)));
  sink->OnEvent(StreamEvent::EndElement("symbol"));
  if (rng_() % 4 == 0) {
    sink->OnEvent(StreamEvent::StartElement("alert"));
    sink->OnEvent(StreamEvent::EndElement("alert"));
  }
  sink->OnEvent(StreamEvent::StartElement("price"));
  sink->OnEvent(StreamEvent::Text(std::to_string(rng_() % 10000)));
  sink->OnEvent(StreamEvent::EndElement("price"));
  sink->OnEvent(StreamEvent::EndElement("tick"));
}

}  // namespace spex
