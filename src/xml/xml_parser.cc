#include "xml/xml_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "obs/metrics.h"
#include "xml/simd_scan.h"

namespace spex {

namespace {

bool AllWhitespace(const std::string& s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

bool SpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool NameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool NameChar(char c) {
  return NameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// 256-entry membership tables for the irregular character classes the bulk
// scanner (scan::FindNotInTable) walks: a run of set bytes is exactly the
// run the per-char machine would have accepted without changing state.
struct ByteTables {
  unsigned char name[256];           // NameChar
  unsigned char name_or_space[256];  // end-tag body: NameChar | space
  unsigned char attr_plain[256];     // start-tag attr region outside quotes:
                                     // space | '/' | '=' | NameChar
};

const ByteTables& Tables() {
  static const ByteTables tables = [] {
    ByteTables t{};
    for (int i = 0; i < 256; ++i) {
      const char c = static_cast<char>(i);
      t.name[i] = NameChar(c) ? 1 : 0;
      t.name_or_space[i] = (NameChar(c) || SpaceChar(c)) ? 1 : 0;
      t.attr_plain[i] =
          (SpaceChar(c) || c == '/' || c == '=' || NameChar(c)) ? 1 : 0;
    }
    return t;
  }();
  return tables;
}

}  // namespace

XmlParser::XmlParser(EventSink* sink, XmlParserOptions options)
    : sink_(sink), options_(options) {
  if (options_.event_batch_size > 1) {
    batch_cap_ = static_cast<size_t>(options_.event_batch_size);
    batch_.reserve(batch_cap_);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCallbackGauge("spex_parser_bytes_consumed", {},
                                       [this] { return bytes_consumed_; });
    options_.metrics->AddCallbackGauge("spex_parser_events", {},
                                       [this] { return events_emitted_; });
    options_.metrics->AddCallbackGauge(
        "spex_parser_max_depth", {},
        [this] { return static_cast<int64_t>(max_depth_); });
  }
}

void XmlParser::Emit(StreamEvent event) {
  ++events_emitted_;
  if (batch_cap_ <= 1) {
    sink_->OnEvent(event);
    return;
  }
  batch_.push_back(std::move(event));
  if (batch_.size() >= batch_cap_) FlushBatch();
}

void XmlParser::FlushBatch() {
  if (batch_.empty()) return;
  sink_->OnEventBatch(batch_.data(), batch_.size());
  batch_.clear();
}

bool XmlParser::IsSpace(char c) { return SpaceChar(c); }

bool XmlParser::IsNameStartChar(char c) { return NameStartChar(c); }

bool XmlParser::IsNameChar(char c) { return NameChar(c); }

bool XmlParser::Fail(const std::string& message) {
  // The events preceding the error are part of the contract (the serving
  // path feeds the prefix and seals the session): deliver them before the
  // parser goes quiet.
  FlushBatch();
  if (error_.empty()) {
    error_ = message + " (at byte " + std::to_string(bytes_consumed_) + ")";
    error_code_ = StatusCode::kMalformedInput;
  }
  state_ = State::kError;
  return false;
}

bool XmlParser::FailLimit(const std::string& message) {
  FlushBatch();
  if (error_.empty()) {
    error_ = message + " (at byte " + std::to_string(bytes_consumed_) + ")";
    error_code_ = StatusCode::kResourceExhausted;
  }
  state_ = State::kError;
  return false;
}

bool XmlParser::BulkAppend(std::string* token, const char* data, size_t count,
                           const char* what) {
  const size_t limit = options_.max_text_bytes;
  if (limit != 0 && token->size() + count > limit) {
    // Admit exactly what the per-char machine would have: it fails on the
    // first byte that pushes the token past the limit, with that byte
    // appended and counted.
    const size_t admit = limit + 1 - token->size();
    token->append(data, admit);
    bytes_consumed_ += static_cast<int64_t>(admit);
    return FailLimit(std::string(what) + " exceeds max_text_bytes (" +
                     std::to_string(limit) + ")");
  }
  token->append(data, count);
  bytes_consumed_ += static_cast<int64_t>(count);
  return true;
}

bool XmlParser::CheckTokenLimit(const std::string& token, const char* what) {
  if (options_.max_text_bytes != 0 && token.size() > options_.max_text_bytes) {
    return FailLimit(std::string(what) + " exceeds max_text_bytes (" +
                     std::to_string(options_.max_text_bytes) + ")");
  }
  return true;
}

void XmlParser::EmitStartDocumentIfNeeded() {
  if (!document_started_) {
    document_started_ = true;
    if (options_.emit_document_events) {
      Emit(StreamEvent::StartDocument());
    }
  }
}

void XmlParser::FlushText() {
  if (text_.empty()) return;
  if (!(options_.skip_whitespace_text && AllWhitespace(text_))) {
    if (!open_elements_.empty()) {  // text outside the root is ignored
      EmitStartDocumentIfNeeded();
      Emit(StreamEvent::Text(text_));
    }
  }
  text_.clear();
}

bool XmlParser::EmitStartElement() {
  if (seen_root_ && open_elements_.empty()) {
    return Fail("multiple root elements");
  }
  EmitStartDocumentIfNeeded();
  seen_root_ = true;
  if (options_.max_depth > 0 &&
      static_cast<int>(open_elements_.size()) >= options_.max_depth) {
    return FailLimit("maximum depth exceeded (max_depth " +
                     std::to_string(options_.max_depth) + ")");
  }
  // The element being opened counts even when self-closing.
  max_depth_ =
      std::max(max_depth_, static_cast<int>(open_elements_.size()) + 1);
  const Symbol sym = options_.symbols != nullptr
                         ? options_.symbols->Intern(tag_name_)
                         : kNoSymbol;
  StreamEvent start = StreamEvent::StartElement(tag_name_);
  start.label = sym;
  Emit(start);
  if (options_.expose_attributes && !EmitAttributes()) return false;
  if (tag_self_closing_) {
    StreamEvent end = StreamEvent::EndElement(tag_name_);
    end.label = sym;
    Emit(end);
  } else {
    open_elements_.push_back(tag_name_);
    open_symbols_.push_back(sym);
  }
  tag_name_.clear();
  tag_rest_.clear();
  tag_self_closing_ = false;
  tag_name_done_ = false;
  return true;
}

bool XmlParser::EmitAttributes() {
  // tag_rest_ holds everything between the element name and '>', with
  // quoting already verified by the feed loop.
  size_t i = 0;
  const std::string& rest = tag_rest_;
  auto skip_space = [&] {
    while (i < rest.size() && IsSpace(rest[i])) ++i;
  };
  for (;;) {
    skip_space();
    if (i >= rest.size()) return true;
    if (rest[i] == '/') {  // the self-closing slash
      ++i;
      continue;
    }
    size_t name_start = i;
    while (i < rest.size() && IsNameChar(rest[i])) ++i;
    if (i == name_start) {
      return Fail("malformed attribute near '" + rest.substr(i, 8) + "'");
    }
    std::string name = rest.substr(name_start, i - name_start);
    skip_space();
    if (i >= rest.size() || rest[i] != '=') {
      return Fail("attribute " + name + " missing '='");
    }
    ++i;
    skip_space();
    if (i >= rest.size() || (rest[i] != '"' && rest[i] != '\'')) {
      return Fail("attribute " + name + " missing quoted value");
    }
    char quote = rest[i++];
    size_t value_start = i;
    while (i < rest.size() && rest[i] != quote) ++i;
    if (i >= rest.size()) {
      return Fail("attribute " + name + " has an unterminated value");
    }
    std::string raw = rest.substr(value_start, i - value_start);
    ++i;
    // Decode entities in the value through the shared text machinery.
    std::string value;
    value.swap(text_);
    for (size_t k = 0; k < raw.size(); ++k) {
      if (raw[k] == '&') {
        entity_buffer_.clear();
        ++k;
        while (k < raw.size() && raw[k] != ';') entity_buffer_ += raw[k++];
        if (k >= raw.size() || !DecodeEntity()) {
          text_.swap(value);
          return Fail("bad entity in attribute " + name);
        }
      } else {
        text_ += raw[k];
      }
    }
    std::string decoded;
    decoded.swap(text_);
    text_.swap(value);
    std::string attr_label = "@" + name;
    const Symbol sym = options_.symbols != nullptr
                           ? options_.symbols->Intern(attr_label)
                           : kNoSymbol;
    StreamEvent start = StreamEvent::StartElement(attr_label);
    start.label = sym;
    Emit(start);
    if (!decoded.empty()) Emit(StreamEvent::Text(decoded));
    StreamEvent end = StreamEvent::EndElement(std::move(attr_label));
    end.label = sym;
    Emit(end);
  }
}

bool XmlParser::EmitEndElement(const std::string& name) {
  if (open_elements_.empty()) {
    return Fail("unbalanced </" + name + ">");
  }
  if (open_elements_.back() != name) {
    return Fail("mismatched </" + name + ">, expected </" +
                open_elements_.back() + ">");
  }
  open_elements_.pop_back();
  StreamEvent end = StreamEvent::EndElement(name);
  end.label = open_symbols_.back();  // resolved at the matching start tag
  open_symbols_.pop_back();
  Emit(end);
  return true;
}

bool XmlParser::DecodeEntity() {
  const std::string& e = entity_buffer_;
  if (e == "lt") {
    text_ += '<';
  } else if (e == "gt") {
    text_ += '>';
  } else if (e == "amp") {
    text_ += '&';
  } else if (e == "apos") {
    text_ += '\'';
  } else if (e == "quot") {
    text_ += '"';
  } else if (!e.empty() && e[0] == '#') {
    long code = 0;
    if (e.size() > 1 && (e[1] == 'x' || e[1] == 'X')) {
      code = std::strtol(e.c_str() + 2, nullptr, 16);
    } else {
      code = std::strtol(e.c_str() + 1, nullptr, 10);
    }
    if (code <= 0 || code > 0x10FFFF) {
      return Fail("invalid character reference &" + e + ";");
    }
    // UTF-8 encode.
    unsigned long cp = static_cast<unsigned long>(code);
    if (cp < 0x80) {
      text_ += static_cast<char>(cp);
    } else if (cp < 0x800) {
      text_ += static_cast<char>(0xC0 | (cp >> 6));
      text_ += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      text_ += static_cast<char>(0xE0 | (cp >> 12));
      text_ += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      text_ += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      text_ += static_cast<char>(0xF0 | (cp >> 18));
      text_ += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      text_ += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      text_ += static_cast<char>(0x80 | (cp & 0x3F));
    }
  } else {
    return Fail("unknown entity &" + e + ";");
  }
  entity_buffer_.clear();
  return true;
}

bool XmlParser::HandleContentChar(char c) {
  if (in_entity_) {
    if (c == ';') {
      in_entity_ = false;
      return DecodeEntity();
    }
    if (entity_buffer_.size() > 16) return Fail("unterminated entity");
    entity_buffer_ += c;
    return true;
  }
  if (c == '<') {
    FlushText();
    if (!ok()) return false;
    state_ = State::kMarkup;
    return true;
  }
  if (c == '&') {
    in_entity_ = true;
    entity_buffer_.clear();
    return true;
  }
  text_ += c;
  return CheckTokenLimit(text_, "text node");
}

bool XmlParser::HandleMarkupChar(char c) {
  if (c == '/') {
    state_ = State::kEndTag;
    tag_name_.clear();
    return true;
  }
  if (c == '?') {
    state_ = State::kPi;
    pi_prev_ = '\0';
    return true;
  }
  if (c == '!') {
    state_ = State::kBang;
    bang_buffer_.clear();
    return true;
  }
  if (IsNameStartChar(c)) {
    state_ = State::kStartTag;
    tag_name_.assign(1, c);
    tag_rest_.clear();
    tag_self_closing_ = false;
    tag_name_done_ = false;
    return true;
  }
  return Fail(std::string("unexpected character '") + c + "' after '<'");
}

bool XmlParser::HandleStartTagChar(char c) {
  if (!tag_name_done_) {
    if (IsNameChar(c)) {
      tag_name_ += c;
      return CheckTokenLimit(tag_name_, "tag name");
    }
    tag_name_done_ = true;
    // fall through: c terminates the name
  }
  if (c == '>') {
    if (!tag_rest_.empty() && tag_rest_.back() == '/') {
      tag_self_closing_ = true;
    }
    state_ = State::kContent;
    return EmitStartElement();
  }
  if (IsSpace(c) || c == '/' || c == '=' || IsNameChar(c)) {
    // Attribute region: kept only to detect the trailing '/'.  A full
    // attribute well-formedness check is overkill for the paper's data model
    // (quoted values are handled by the caller's quote tracking).
    tag_rest_ += c;
    return CheckTokenLimit(tag_rest_, "attribute region");
  }
  return Fail(std::string("unexpected character '") + c + "' in start tag <" +
              tag_name_);
}

bool XmlParser::HandleEndTagChar(char c) {
  if (c == '>') {
    // Trim trailing spaces: "</a  >" is legal.
    while (!tag_name_.empty() && IsSpace(tag_name_.back())) {
      tag_name_.pop_back();
    }
    if (tag_name_.empty()) return Fail("empty end tag");
    state_ = State::kContent;
    bool ok2 = EmitEndElement(tag_name_);
    tag_name_.clear();
    return ok2;
  }
  if (IsNameChar(c) || IsSpace(c)) {
    tag_name_ += c;
    return CheckTokenLimit(tag_name_, "tag name");
  }
  return Fail(std::string("unexpected character '") + c + "' in end tag");
}

bool XmlParser::Feed(std::string_view chunk) {
  if (state_ == State::kError) return false;
  const char* data = chunk.data();
  const size_t n = chunk.size();
  size_t i = 0;
  while (i < n) {
    // Bulk fast path: consume the maximal run of bytes the current state
    // accepts without a state change (scanned 8/16 bytes at a time, see
    // simd_scan.h), then let the per-char machine below handle the boundary
    // byte.  Every branch is a pure batching of what the per-char machine
    // does byte by byte — event stream, counters and error positions are
    // identical at any chunk split (xml_parser_scan_test.cc).
    switch (state_) {
      case State::kContent:
        if (!in_entity_) {
          const size_t run = scan::FindEither(data + i, n - i, '<', '&');
          if (run > 0) {
            if (!BulkAppend(&text_, data + i, run, "text node")) return false;
            i += run;
            continue;
          }
        }
        break;
      case State::kStartTag:
        if (attr_quote_ != 0) {
          const size_t run = scan::FindByte(
              data + i, n - i, static_cast<unsigned char>(attr_quote_));
          if (run > 0) {
            if (!BulkAppend(&tag_rest_, data + i, run, "attribute region")) {
              return false;
            }
            i += run;
            continue;
          }
        } else if (!tag_name_done_) {
          const size_t run =
              scan::FindNotInTable(data + i, n - i, Tables().name);
          if (run > 0) {
            if (!BulkAppend(&tag_name_, data + i, run, "tag name")) {
              return false;
            }
            i += run;
            continue;
          }
        } else {
          const size_t run =
              scan::FindNotInTable(data + i, n - i, Tables().attr_plain);
          if (run > 0) {
            if (!BulkAppend(&tag_rest_, data + i, run, "attribute region")) {
              return false;
            }
            i += run;
            continue;
          }
        }
        break;
      case State::kEndTag: {
        const size_t run =
            scan::FindNotInTable(data + i, n - i, Tables().name_or_space);
        if (run > 0) {
          if (!BulkAppend(&tag_name_, data + i, run, "tag name")) {
            return false;
          }
          i += run;
          continue;
        }
        break;
      }
      case State::kComment:
        if (comment_dashes_ == 0) {
          const size_t run = scan::FindByte(data + i, n - i, '-');
          if (run > 0) {
            bytes_consumed_ += static_cast<int64_t>(run);
            i += run;
            continue;
          }
        }
        break;
      case State::kCdata:
        if (cdata_brackets_ == 0) {
          const size_t run = scan::FindByte(data + i, n - i, ']');
          if (run > 0) {
            if (!BulkAppend(&text_, data + i, run, "text node")) return false;
            i += run;
            continue;
          }
        }
        break;
      case State::kPi:
        if (pi_prev_ != '?') {
          const size_t run = scan::FindByte(data + i, n - i, '?');
          if (run > 0) {
            bytes_consumed_ += static_cast<int64_t>(run);
            pi_prev_ = data[i + run - 1];
            i += run;
            continue;
          }
        }
        break;
      case State::kDoctype: {
        const size_t run = scan::FindEither(data + i, n - i, '<', '>');
        if (run > 0) {
          bytes_consumed_ += static_cast<int64_t>(run);
          i += run;
          continue;
        }
        break;
      }
      default:
        break;
    }
    const char c = data[i++];
    ++bytes_consumed_;
    switch (state_) {
      case State::kContent:
        if (!HandleContentChar(c)) return false;
        break;
      case State::kMarkup:
        if (!HandleMarkupChar(c)) return false;
        break;
      case State::kStartTag:
        // Quote-aware: inside a quoted attribute value '>' is data.
        if (attr_quote_ != 0) {
          if (c == attr_quote_) attr_quote_ = 0;
          tag_rest_ += c;
          if (!CheckTokenLimit(tag_rest_, "attribute region")) return false;
        } else if (tag_name_done_ && (c == '"' || c == '\'')) {
          attr_quote_ = c;
          tag_rest_ += c;
          if (!CheckTokenLimit(tag_rest_, "attribute region")) return false;
        } else if (!HandleStartTagChar(c)) {
          return false;
        }
        break;
      case State::kEndTag:
        if (!HandleEndTagChar(c)) return false;
        break;
      case State::kBang:
        bang_buffer_ += c;
        if (bang_buffer_ == "--") {
          state_ = State::kComment;
          comment_dashes_ = 0;
        } else if (bang_buffer_ == "[CDATA[") {
          state_ = State::kCdata;
          cdata_brackets_ = 0;
        } else if (bang_buffer_.size() >= 7 &&
                   bang_buffer_.compare(0, 7, "DOCTYPE") == 0) {
          state_ = State::kDoctype;
          doctype_depth_ = 1;  // counts '<' ... '>' nesting incl. the opener
        } else if (bang_buffer_.size() > 7) {
          return Fail("malformed '<!' markup");
        }
        break;
      case State::kComment:
        if (c == '-') {
          ++comment_dashes_;
        } else if (c == '>' && comment_dashes_ >= 2) {
          state_ = State::kContent;
        } else {
          comment_dashes_ = 0;
        }
        break;
      case State::kCdata:
        if (c == ']') {
          ++cdata_brackets_;
        } else if (c == '>' && cdata_brackets_ >= 2) {
          state_ = State::kContent;
          cdata_brackets_ = 0;
        } else {
          while (cdata_brackets_ > 0) {
            text_ += ']';
            --cdata_brackets_;
          }
          text_ += c;
          if (!CheckTokenLimit(text_, "text node")) return false;
        }
        break;
      case State::kPi:
        if (c == '>' && pi_prev_ == '?') {
          state_ = State::kContent;
        }
        pi_prev_ = c;
        break;
      case State::kDoctype:
        if (c == '<') {
          ++doctype_depth_;
        } else if (c == '>') {
          --doctype_depth_;
          if (doctype_depth_ == 0) state_ = State::kContent;
        }
        break;
      case State::kError:
        return false;
    }
  }
  FlushBatch();
  return ok();
}

bool XmlParser::Finish() {
  if (state_ == State::kError) return false;
  if (state_ != State::kContent) {
    return Fail("input ended inside markup");
  }
  if (in_entity_) {
    return Fail("input ended inside entity reference");
  }
  FlushText();
  if (!ok()) return false;
  if (!open_elements_.empty()) {
    return Fail("unclosed <" + open_elements_.back() + "> at end of input");
  }
  if (!seen_root_) {
    return Fail("no root element");
  }
  EmitStartDocumentIfNeeded();
  if (options_.emit_document_events) {
    Emit(StreamEvent::EndDocument());
  }
  FlushBatch();
  return true;
}

bool XmlParser::Parse(std::string_view document) {
  return Feed(document) && Finish();
}

bool ParseXmlToEvents(std::string_view document, std::vector<StreamEvent>* out,
                      std::string* error, XmlParserOptions options) {
  RecordingEventSink sink;
  XmlParser parser(&sink, options);
  if (!parser.Parse(document)) {
    if (error != nullptr) *error = parser.error();
    return false;
  }
  *out = sink.events();
  return true;
}

Status ParseXmlToEvents(std::string_view document,
                        std::vector<StreamEvent>* out,
                        XmlParserOptions options) {
  RecordingEventSink sink;
  XmlParser parser(&sink, options);
  parser.Parse(document);
  *out = sink.events();
  return parser.status();
}

}  // namespace spex
