#include "xml/dom.h"

#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace spex {

std::vector<int32_t> Document::Children(int32_t id) const {
  std::vector<int32_t> out;
  for (int32_t c = nodes_[id].first_child; c != -1;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

std::vector<int32_t> Document::ElementChildren(int32_t id) const {
  std::vector<int32_t> out;
  for (int32_t c = nodes_[id].first_child; c != -1;
       c = nodes_[c].next_sibling) {
    if (nodes_[c].kind == DomNode::Kind::kElement) out.push_back(c);
  }
  return out;
}

void Document::EmitSubtree(int32_t id, EventSink* sink) const {
  const DomNode& n = nodes_[id];
  if (n.kind == DomNode::Kind::kText) {
    sink->OnEvent(StreamEvent::Text(n.text));
    return;
  }
  sink->OnEvent(StreamEvent::StartElement(n.label));
  for (int32_t c = n.first_child; c != -1; c = nodes_[c].next_sibling) {
    EmitSubtree(c, sink);
  }
  sink->OnEvent(StreamEvent::EndElement(n.label));
}

void Document::EmitDocument(EventSink* sink) const {
  sink->OnEvent(StreamEvent::StartDocument());
  if (!empty()) EmitSubtree(0, sink);
  sink->OnEvent(StreamEvent::EndDocument());
}

std::string Document::SubtreeToXml(int32_t id) const {
  XmlWriter writer;
  EmitSubtree(id, &writer);
  return writer.str();
}

DomBuilder::DomBuilder() = default;

int32_t DomBuilder::AddNode(DomNode node) {
  int32_t id = static_cast<int32_t>(doc_.nodes_.size());
  if (!stack_.empty()) {
    int32_t parent = stack_.back();
    node.parent = parent;
    node.depth = doc_.nodes_[parent].depth + 1;
    int32_t& last = last_child_.back();
    if (last == -1) {
      doc_.nodes_[parent].first_child = id;
    } else {
      doc_.nodes_[last].next_sibling = id;
    }
    last = id;
  } else {
    node.parent = -1;
    node.depth = 1;
  }
  node.document_order = order_counter_++;
  if (node.depth > doc_.max_depth_) doc_.max_depth_ = node.depth;
  doc_.nodes_.push_back(std::move(node));
  return id;
}

void DomBuilder::OnEvent(const StreamEvent& event) {
  if (!ok() || done_) return;
  switch (event.kind) {
    case EventKind::kStartDocument:
      break;
    case EventKind::kEndDocument:
      if (!stack_.empty()) {
        error_ = "end of document with open elements";
        return;
      }
      done_ = true;
      break;
    case EventKind::kStartElement: {
      if (stack_.empty() && !doc_.nodes_.empty()) {
        error_ = "multiple root elements";
        return;
      }
      DomNode n;
      n.kind = DomNode::Kind::kElement;
      n.label = event.name;
      int32_t id = AddNode(std::move(n));
      ++doc_.element_count_;
      stack_.push_back(id);
      last_child_.push_back(-1);
      break;
    }
    case EventKind::kEndElement:
      if (stack_.empty()) {
        error_ = "unbalanced end element </" + event.name + ">";
        return;
      }
      if (doc_.nodes_[stack_.back()].label != event.name) {
        error_ = "mismatched end element </" + event.name + ">";
        return;
      }
      stack_.pop_back();
      last_child_.pop_back();
      break;
    case EventKind::kText: {
      if (stack_.empty()) return;  // text outside root: ignore
      DomNode n;
      n.kind = DomNode::Kind::kText;
      n.text = event.text;
      AddNode(std::move(n));
      break;
    }
  }
}

Document DomBuilder::TakeDocument() { return std::move(doc_); }

bool ParseXmlToDocument(std::string_view text, Document* out,
                        std::string* error) {
  DomBuilder builder;
  XmlParser parser(&builder);
  if (!parser.Parse(text)) {
    if (error != nullptr) *error = parser.error();
    return false;
  }
  if (!builder.ok()) {
    if (error != nullptr) *error = builder.error();
    return false;
  }
  *out = builder.TakeDocument();
  return true;
}

bool EventsToDocument(const std::vector<StreamEvent>& events, Document* out,
                      std::string* error) {
  DomBuilder builder;
  for (const StreamEvent& e : events) builder.OnEvent(e);
  if (!builder.ok() || !builder.done()) {
    if (error != nullptr) {
      *error = builder.ok() ? "incomplete stream" : builder.error();
    }
    return false;
  }
  *out = builder.TakeDocument();
  return true;
}

}  // namespace spex
