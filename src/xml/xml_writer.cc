#include "xml/xml_writer.h"

namespace spex {

XmlWriter::XmlWriter(XmlWriterOptions options) : options_(options) {}

void XmlWriter::Clear() {
  out_.clear();
  depth_ = 0;
  at_line_start_ = true;
  tag_open_ = false;
  in_attribute_ = false;
  attribute_name_.clear();
  attribute_value_.clear();
}

std::string XmlWriter::EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlWriter::EscapeAttribute(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void XmlWriter::FinishOpenTag() {
  if (tag_open_) {
    out_ += '>';
    tag_open_ = false;
  }
}

void XmlWriter::Indent() {
  if (options_.indent < 0) return;
  if (!out_.empty() && !at_line_start_) out_ += '\n';
  out_.append(static_cast<size_t>(depth_ * options_.indent), ' ');
  at_line_start_ = false;
}

void XmlWriter::OnEvent(const StreamEvent& event) {
  const bool folding = options_.fold_attributes;
  if (in_attribute_) {
    // Between <@name> and </@name>: only text contributes the value.
    if (event.kind == EventKind::kText) {
      attribute_value_ += event.text;
      return;
    }
    if (event.kind == EventKind::kEndElement &&
        event.name == attribute_name_) {
      out_ += ' ';
      out_ += attribute_name_.substr(1);  // drop the '@'
      out_ += "=\"";
      out_ += EscapeAttribute(attribute_value_);
      out_ += '"';
      in_attribute_ = false;
      attribute_name_.clear();
      attribute_value_.clear();
      return;
    }
    // Malformed @-element (should not happen): fall back to closing the
    // tag and emitting literally.
    FinishOpenTag();
  }
  switch (event.kind) {
    case EventKind::kStartDocument:
      if (options_.declaration) {
        out_ += "<?xml version=\"1.0\"?>";
        if (options_.indent >= 0) out_ += '\n';
      }
      break;
    case EventKind::kEndDocument:
      FinishOpenTag();
      if (options_.indent >= 0 && !out_.empty() && out_.back() != '\n') {
        out_ += '\n';
      }
      break;
    case EventKind::kStartElement:
      if (folding && tag_open_ && !event.name.empty() &&
          event.name[0] == '@') {
        in_attribute_ = true;
        attribute_name_ = event.name;
        attribute_value_.clear();
        return;
      }
      FinishOpenTag();
      Indent();
      out_ += '<';
      out_ += event.name;
      if (folding) {
        tag_open_ = true;  // withhold '>' while @-children may arrive
      } else {
        out_ += '>';
      }
      ++depth_;
      break;
    case EventKind::kEndElement:
      FinishOpenTag();
      --depth_;
      Indent();
      out_ += "</";
      out_ += event.name;
      out_ += '>';
      break;
    case EventKind::kText:
      FinishOpenTag();
      Indent();
      out_ += EscapeText(event.text);
      break;
  }
}

std::string EventsToXml(const std::vector<StreamEvent>& events,
                        XmlWriterOptions options) {
  XmlWriter writer(options);
  for (const StreamEvent& e : events) writer.OnEvent(e);
  return writer.str();
}

}  // namespace spex
