// Streaming (SAX-style) XML parser, built from scratch (paper §II.1 and [8]).
//
// The parser is incremental and push-based: feed it arbitrary chunks of bytes
// with Feed(); it emits document messages to an EventSink as soon as they are
// complete.  This matches the paper's setting where the stream may be
// unbounded and must never be buffered wholesale.
//
// Supported XML subset (the paper's data model, §II.1):
//   * elements with ASCII-ish names:  <a> ... </a>  and  <a/>
//   * character data, with entity decoding (&lt; &gt; &amp; &apos; &quot;
//     and numeric &#NN; / &#xHH;)
//   * XML declaration (<?xml ... ?>), processing instructions, comments,
//     CDATA sections and DOCTYPE are recognized and skipped
//   * attributes are parsed for well-formedness and, optionally
//     (XmlParserOptions::expose_attributes), exposed as @-prefixed virtual
//     child elements; by default they are skipped as in the paper's data
//     model
//
// Errors are reported by returning false; the message is in error().

#ifndef SPEX_XML_XML_PARSER_H_
#define SPEX_XML_XML_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "xml/stream_event.h"

namespace spex {

namespace obs {
class MetricRegistry;
}  // namespace obs

// Tunable limits protecting against pathological inputs.
struct XmlParserOptions {
  // If true, text consisting only of whitespace between elements is dropped.
  bool skip_whitespace_text = true;
  // If true, attributes are exposed in the stream as virtual child elements
  // named "@<attr>" holding the value as text, emitted right after the
  // element's start message (the paper's §II.1 "necessary extensions are
  // technical, but not difficult"): <a id="7"> becomes
  // <a> <@id> "7" </@id> ... — queries like a[@id] or a.@id then work with
  // the unchanged transducer network.  If false (default), attributes are
  // parsed for well-formedness and dropped.
  bool expose_attributes = false;
  // Maximum element nesting depth accepted (0 = unlimited).  Breaching it is
  // a kResourceExhausted error, not a well-formedness error.
  int max_depth = 0;
  // Maximum size, in bytes, of any single accumulated token: a text node, a
  // tag name, or a start tag's attribute region (0 = unlimited).  Bounds the
  // parser's own buffering against adversarial inputs — an unterminated
  // multi-gigabyte text node or attribute value otherwise grows resident
  // memory without ever emitting an event.  Breaching it is a
  // kResourceExhausted error.
  size_t max_text_bytes = 0;
  // If true, the parser emits kStartDocument before the first message and
  // kEndDocument when Finish() is called.
  bool emit_document_events = true;
  // Number of document messages buffered before delivery to the sink via
  // EventSink::OnEventBatch (DESIGN.md §11).  Events are always flushed at
  // the end of every Feed() / Finish() call and before an error is reported,
  // so a sink observes exactly the per-event stream, just in groups; 1 (or
  // 0) delivers every event immediately through OnEvent.  The batch buffer
  // stays alive across the OnEventBatch call, satisfying the SPEX engine's
  // borrow contract.
  int event_batch_size = 64;
  // Optional symbol table: element labels (and @-attribute names) are
  // interned once per distinct tag and stamped onto the emitted events'
  // `label` field — end tags reuse the symbol resolved at the matching start
  // tag, so they never touch the table.  Null leaves labels unstamped
  // (kNoSymbol).  The table must outlive the parser; consumers that compare
  // symbols (the SPEX engine) must be given the same table.
  SymbolTable* symbols = nullptr;
  // Optional metrics registry (typically SpexEngine::metrics()): the parser
  // registers pull gauges spex_parser_bytes_consumed, spex_parser_events and
  // spex_parser_max_depth over its always-maintained counters.  The registry
  // must outlive the parser's last Collect().
  obs::MetricRegistry* metrics = nullptr;
};

class XmlParser {
 public:
  explicit XmlParser(EventSink* sink, XmlParserOptions options = {});

  XmlParser(const XmlParser&) = delete;
  XmlParser& operator=(const XmlParser&) = delete;

  // Feeds a chunk of input.  Returns false on a well-formedness error (the
  // parser then stays in the error state).
  bool Feed(std::string_view chunk);

  // Declares end of input: flushes trailing text, checks all elements are
  // closed, and emits </$>.  Returns false on error.
  bool Finish();

  // Convenience: parse a complete document in one call.
  bool Parse(std::string_view document);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  // Structured view of the error state: kOk while parsing is healthy,
  // kMalformedInput for well-formedness errors, kResourceExhausted when a
  // configured limit (max_depth, max_text_bytes) was breached.
  Status status() const {
    return ok() ? Status::Ok() : Status(error_code_, error_);
  }

  // Number of bytes consumed so far.
  int64_t bytes_consumed() const { return bytes_consumed_; }
  // Number of document messages emitted to the sink so far.
  int64_t events_emitted() const { return events_emitted_; }
  // Current element nesting depth.
  int depth() const { return static_cast<int>(open_elements_.size()); }
  // Peak element nesting depth seen so far (the paper's d of §V).
  int max_depth() const { return max_depth_; }

 private:
  enum class State : uint8_t {
    kContent,        // between markup: accumulating character data
    kMarkup,         // after '<'
    kStartTag,       // inside <name ... >
    kEndTag,         // inside </name >
    kComment,        // inside <!-- ... -->
    kCdata,          // inside <![CDATA[ ... ]]>
    kPi,             // inside <? ... ?>
    kDoctype,        // inside <!DOCTYPE ... >
    kBang,           // after '<!', disambiguating comment / CDATA / DOCTYPE
    kError,
  };

  bool Fail(const std::string& message);
  // As Fail, but classifies the error as a limit breach (kResourceExhausted)
  // rather than malformed input.
  bool FailLimit(const std::string& message);
  // Enforces options_.max_text_bytes over an accumulating token buffer.
  bool CheckTokenLimit(const std::string& token, const char* what);
  // Appends a scanned run of `count` bytes to `token`, advancing
  // bytes_consumed_.  On a max_text_bytes breach it admits exactly the bytes
  // the per-char machine would have accepted before failing, so the error's
  // byte position and the token's final size are identical to per-char
  // parsing at any chunk split.
  bool BulkAppend(std::string* token, const char* data, size_t count,
                  const char* what);
  // Counting funnel in front of the sink: every document message passes
  // through here so events_emitted() stays exact.  Buffers into batch_ when
  // event batching is on (XmlParserOptions::event_batch_size > 1).
  void Emit(StreamEvent event);
  // Delivers the buffered batch (if any) through EventSink::OnEventBatch.
  void FlushBatch();
  void EmitStartDocumentIfNeeded();
  void FlushText();
  bool EmitStartElement();
  // Parses tag_rest_ into (name, value) pairs and emits them as virtual
  // @-elements.  Returns false on malformed attribute syntax.
  bool EmitAttributes();
  bool EmitEndElement(const std::string& name);
  bool DecodeEntity();  // decodes entity_buffer_ into text_
  bool HandleContentChar(char c);
  bool HandleMarkupChar(char c);
  bool HandleStartTagChar(char c);
  bool HandleEndTagChar(char c);

  static bool IsNameStartChar(char c);
  static bool IsNameChar(char c);
  static bool IsSpace(char c);

  EventSink* sink_;
  XmlParserOptions options_;
  State state_ = State::kContent;
  std::string error_;
  StatusCode error_code_ = StatusCode::kMalformedInput;  // when error_ set

  bool document_started_ = false;
  bool seen_root_ = false;
  bool in_entity_ = false;
  std::string entity_buffer_;
  std::string text_;       // pending character data
  std::string tag_name_;   // name being accumulated
  std::string tag_rest_;   // attribute region of a start tag
  bool tag_self_closing_ = false;
  bool tag_name_done_ = false;
  char attr_quote_ = '\0';  // active quote char inside a start tag, or 0
  std::string bang_buffer_;  // lookahead after '<!'
  int comment_dashes_ = 0;   // trailing '-' count inside comments
  int cdata_brackets_ = 0;   // trailing ']' count inside CDATA
  char pi_prev_ = '\0';
  int doctype_depth_ = 0;
  std::vector<std::string> open_elements_;
  std::vector<Symbol> open_symbols_;  // parallel to open_elements_
  std::vector<StreamEvent> batch_;    // pending events (event batching)
  size_t batch_cap_ = 1;              // flush threshold; 1 = per-event
  int64_t bytes_consumed_ = 0;
  int64_t events_emitted_ = 0;
  int max_depth_ = 0;
};

// Parses a complete document into a vector of events.  Returns true on
// success; on failure fills *error if non-null.
bool ParseXmlToEvents(std::string_view document, std::vector<StreamEvent>* out,
                      std::string* error = nullptr,
                      XmlParserOptions options = {});

// Structured-status variant for the serving path.  Unlike the bool form, on
// failure *out still receives the event prefix emitted before the error (no
// kEndDocument), so a server can feed the prefix and Abort() the session for
// a sealed partial result; the returned status classifies the failure.
Status ParseXmlToEvents(std::string_view document, std::vector<StreamEvent>* out,
                        XmlParserOptions options);

}  // namespace spex

#endif  // SPEX_XML_XML_PARSER_H_
