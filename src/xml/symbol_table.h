// Label interning (hot-path discipline, see DESIGN.md).
//
// Element labels repeat constantly in an XML stream — a DMOZ-like document
// has millions of elements but a handful of distinct tag names.  The parser
// interns every label once into a run-owned SymbolTable and stamps the dense
// uint32 Symbol onto the StreamEvent, so every label test downstream (child /
// closure / self-axis transducers, the NFA baseline) is a single integer
// compare instead of a std::string compare.
//
// Symbol 0 (kNoSymbol) is reserved for "not interned": events built by hand
// in tests carry it, and every consumer keeps a string-compare fallback for
// that case.  Symbols are only meaningful relative to the table that issued
// them; the engine owns one table per run (RunContext::symbol_table()).

#ifndef SPEX_XML_SYMBOL_TABLE_H_
#define SPEX_XML_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/thread_check.h"

namespace spex {

// Dense interned label id.  0 means "no symbol assigned".
using Symbol = uint32_t;

inline constexpr Symbol kNoSymbol = 0;

class SymbolTable {
 public:
  SymbolTable() { names_.emplace_back(); }  // index 0 = kNoSymbol

  // Returns the symbol for `name`, interning it on first sight.  Interning
  // is stable: the same string always maps to the same symbol.
  Symbol Intern(std::string_view name) {
    // A table is single-threaded like the run that owns it: interning
    // rehashes, so even one concurrent reader is corruption.  Sessions in
    // the concurrent runtime each own a private table (see src/runtime).
    SPEX_DCHECK_THREAD(affinity_, "spex::SymbolTable");
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    Symbol sym = static_cast<Symbol>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), sym);  // key is an owned copy
    return sym;
  }

  // Returns the symbol for `name` if already interned, else kNoSymbol.
  Symbol Lookup(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kNoSymbol : it->second;
  }

  // The label text for a symbol issued by this table ("" for kNoSymbol).
  const std::string& Name(Symbol sym) const { return names_[sym]; }

  // Number of distinct interned labels, excluding the reserved slot 0.
  size_t size() const { return names_.size() - 1; }

 private:
  // Transparent hash/eq so Lookup/Intern take string_view without building a
  // temporary std::string on the hit path (C++20 heterogeneous lookup).
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  ThreadAffinity affinity_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol, Hash, Eq> index_;
};

}  // namespace spex

#endif  // SPEX_XML_SYMBOL_TABLE_H_
