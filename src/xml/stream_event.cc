#include "xml/stream_event.h"

#include <ostream>
#include <vector>

namespace spex {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStartDocument:
      return "start-document";
    case EventKind::kEndDocument:
      return "end-document";
    case EventKind::kStartElement:
      return "start-element";
    case EventKind::kEndElement:
      return "end-element";
    case EventKind::kText:
      return "text";
  }
  return "unknown";
}

std::string StreamEvent::ToString() const {
  switch (kind) {
    case EventKind::kStartDocument:
      return "<$>";
    case EventKind::kEndDocument:
      return "</$>";
    case EventKind::kStartElement:
      return "<" + name + ">";
    case EventKind::kEndElement:
      return "</" + name + ">";
    case EventKind::kText:
      return "\"" + text + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const StreamEvent& event) {
  return os << event.ToString();
}

bool ValidateStream(const std::vector<StreamEvent>& events, std::string* error) {
  if (events.empty()) {
    if (error != nullptr) *error = "empty stream";
    return false;
  }
  if (events.front().kind != EventKind::kStartDocument) {
    if (error != nullptr) *error = "stream does not begin with <$>";
    return false;
  }
  if (events.back().kind != EventKind::kEndDocument) {
    if (error != nullptr) *error = "stream does not end with </$>";
    return false;
  }
  std::vector<const std::string*> open;
  for (size_t i = 1; i + 1 < events.size(); ++i) {
    const StreamEvent& e = events[i];
    switch (e.kind) {
      case EventKind::kStartDocument:
      case EventKind::kEndDocument:
        if (error != nullptr) *error = "document message inside the document";
        return false;
      case EventKind::kStartElement:
        open.push_back(&e.name);
        break;
      case EventKind::kEndElement:
        if (open.empty()) {
          if (error != nullptr) *error = "unbalanced </" + e.name + ">";
          return false;
        }
        if (*open.back() != e.name) {
          if (error != nullptr) {
            *error = "mismatched </" + e.name + ">, expected </" +
                     *open.back() + ">";
          }
          return false;
        }
        open.pop_back();
        break;
      case EventKind::kText:
        break;
    }
  }
  if (!open.empty()) {
    if (error != nullptr) *error = "unclosed <" + *open.back() + ">";
    return false;
  }
  return true;
}

int StreamDepth(const std::vector<StreamEvent>& events) {
  int depth = 0;
  int max_depth = 0;
  for (const StreamEvent& e : events) {
    if (e.kind == EventKind::kStartElement) {
      ++depth;
      if (depth > max_depth) max_depth = depth;
    } else if (e.kind == EventKind::kEndElement) {
      --depth;
    }
  }
  return max_depth;
}

int64_t CountElements(const std::vector<StreamEvent>& events) {
  int64_t n = 0;
  for (const StreamEvent& e : events) {
    if (e.kind == EventKind::kStartElement) ++n;
  }
  return n;
}

}  // namespace spex
