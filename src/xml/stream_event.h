// XML stream data model (paper §II.1).
//
// A stream is a sequence of document messages: a start-document message <$>,
// start-element / end-element messages carrying parent-child structure, text
// messages, and an end-document message </$>.  Streaming an XML document
// corresponds to a depth-first left-to-right traversal of its tree.

#ifndef SPEX_XML_STREAM_EVENT_H_
#define SPEX_XML_STREAM_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "xml/symbol_table.h"

namespace spex {

// Kind of a document message.
enum class EventKind : uint8_t {
  kStartDocument,  // <$>
  kEndDocument,    // </$>
  kStartElement,   // <name>
  kEndElement,     // </name>
  kText,           // character data
};

// Returns a short human-readable name ("start-document", "start-element", ...).
const char* EventKindName(EventKind kind);

// One document message.  For element events `name` holds the label; for text
// events `text` holds the character data; the unused field is empty.
//
// `label` is the interned symbol for `name`, stamped by XmlParser when it was
// given a SymbolTable (see EvaluateXml / XmlParserOptions::symbols).  Events
// built by hand carry kNoSymbol and every consumer falls back to comparing
// `name`.  Equality deliberately ignores `label`: two events with the same
// text are the same document message regardless of which table (if any)
// interned them.
struct StreamEvent {
  EventKind kind = EventKind::kStartDocument;
  std::string name;
  std::string text;
  Symbol label = kNoSymbol;

  static StreamEvent StartDocument() { return {EventKind::kStartDocument, {}, {}}; }
  static StreamEvent EndDocument() { return {EventKind::kEndDocument, {}, {}}; }
  static StreamEvent StartElement(std::string label) {
    return {EventKind::kStartElement, std::move(label), {}};
  }
  static StreamEvent EndElement(std::string label) {
    return {EventKind::kEndElement, std::move(label), {}};
  }
  static StreamEvent Text(std::string data) {
    return {EventKind::kText, {}, std::move(data)};
  }

  bool IsElement() const {
    return kind == EventKind::kStartElement || kind == EventKind::kEndElement;
  }

  // Renders the event in the paper's notation: <$>, </$>, <a>, </a>, "text".
  std::string ToString() const;

  friend bool operator==(const StreamEvent& a, const StreamEvent& b) {
    return a.kind == b.kind && a.name == b.name && a.text == b.text;
  }
};

std::ostream& operator<<(std::ostream& os, const StreamEvent& event);

// Consumer of a stream of document messages.  Implemented by the SPEX engine,
// the DOM builder, the serializer, and test recorders.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const StreamEvent& event) = 0;
  // Batched delivery: `count` consecutive stream events, in document order.
  // The events must stay alive for the duration of the call (the SPEX
  // engine's zero-copy borrow extends over the whole batch).  The default
  // simply loops OnEvent, so every sink accepts batches; the SPEX engine
  // overrides it to amortize per-event delivery costs (DESIGN.md §11).
  virtual void OnEventBatch(const StreamEvent* events, size_t count) {
    for (size_t i = 0; i < count; ++i) OnEvent(events[i]);
  }
};

// EventSink adapter around a std::function, convenient in tests and examples.
class FunctionEventSink : public EventSink {
 public:
  explicit FunctionEventSink(std::function<void(const StreamEvent&)> fn)
      : fn_(std::move(fn)) {}
  void OnEvent(const StreamEvent& event) override { fn_(event); }

 private:
  std::function<void(const StreamEvent&)> fn_;
};

// EventSink that appends every event to a vector.
class RecordingEventSink : public EventSink {
 public:
  void OnEvent(const StreamEvent& event) override { events_.push_back(event); }
  const std::vector<StreamEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<StreamEvent> events_;
};

// Checks that `events` forms a well-formed stream: starts with <$>, ends with
// </$>, element tags are properly nested and labels match.  Returns true on
// success; otherwise fills *error with a description.
bool ValidateStream(const std::vector<StreamEvent>& events, std::string* error);

// Returns the maximum element nesting depth of a well-formed stream (the
// depth d of the unmaterialized document tree; the root element has depth 1).
int StreamDepth(const std::vector<StreamEvent>& events);

// Counts the elements (start-element messages) in the stream.
int64_t CountElements(const std::vector<StreamEvent>& events);

}  // namespace spex

#endif  // SPEX_XML_STREAM_EVENT_H_
