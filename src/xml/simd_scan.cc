#include "xml/simd_scan.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if !defined(SPEX_NO_SIMD) && defined(__SSE2__)
#define SPEX_SCAN_SSE2 1
#include <emmintrin.h>
#endif
#if !defined(SPEX_NO_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define SPEX_SCAN_NEON 1
#include <arm_neon.h>
#endif

namespace spex {
namespace scan {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend — the reference every other backend must match exactly.

size_t ByteScalar(const char* data, size_t n, unsigned char b) {
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<unsigned char>(data[i]) == b) return i;
  }
  return n;
}

size_t EitherScalar(const char* data, size_t n, unsigned char a,
                    unsigned char b) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    if (c == a || c == b) return i;
  }
  return n;
}

#if !defined(SPEX_NO_SIMD) && !defined(SPEX_SCAN_SSE2) && \
    !defined(SPEX_SCAN_NEON) &&                           \
    (!defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
#define SPEX_SCAN_SWAR 1
#endif

#ifdef SPEX_SCAN_SWAR
// ---------------------------------------------------------------------------
// SWAR backend: 8 bytes per step in a 64-bit register (little-endian).
//
// ZeroBytes(v) has the high bit set in (at least) the lowest-addressed zero
// byte of v; bytes above the first zero byte can carry borrow-propagation
// false positives, but the LOWEST set bit is always exact — and on a
// little-endian load the lowest-addressed byte is the least significant, so
// ctz(mask)/8 is the index of the first match.  For the two-target OR, any
// false positive in one mask lies above a true match of that same mask, so
// the union's lowest set bit is still a true match of one of the targets.

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHigh = 0x8080808080808080ull;

inline uint64_t ZeroBytes(uint64_t v) { return (v - kOnes) & ~v & kHigh; }

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

size_t ByteSwar(const char* data, size_t n, unsigned char b) {
  const uint64_t pat = kOnes * b;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t m = ZeroBytes(LoadWord(data + i) ^ pat);
    if (m != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(m)) / 8;
    }
  }
  return i + ByteScalar(data + i, n - i, b);
}

size_t EitherSwar(const char* data, size_t n, unsigned char a,
                  unsigned char b) {
  const uint64_t pat_a = kOnes * a;
  const uint64_t pat_b = kOnes * b;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t w = LoadWord(data + i);
    const uint64_t m = ZeroBytes(w ^ pat_a) | ZeroBytes(w ^ pat_b);
    if (m != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(m)) / 8;
    }
  }
  return i + EitherScalar(data + i, n - i, a, b);
}
#endif  // SPEX_SCAN_SWAR

#ifdef SPEX_SCAN_SSE2
// ---------------------------------------------------------------------------
// SSE2 backend: 16 bytes per step; movemask + ctz gives an exact first-match
// index with no SWAR caveats.

size_t ByteSse2(const char* data, size_t n, unsigned char b) {
  const __m128i pat = _mm_set1_epi8(static_cast<char>(b));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pat));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  return i + ByteScalar(data + i, n - i, b);
}

size_t EitherSse2(const char* data, size_t n, unsigned char a,
                  unsigned char b) {
  const __m128i pat_a = _mm_set1_epi8(static_cast<char>(a));
  const __m128i pat_b = _mm_set1_epi8(static_cast<char>(b));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int mask = _mm_movemask_epi8(_mm_or_si128(
        _mm_cmpeq_epi8(chunk, pat_a), _mm_cmpeq_epi8(chunk, pat_b)));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  return i + EitherScalar(data + i, n - i, a, b);
}
#endif  // SPEX_SCAN_SSE2

#ifdef SPEX_SCAN_NEON
// ---------------------------------------------------------------------------
// NEON backend: 16 bytes per step; the compare is narrowed to a 64-bit mask
// with 4 bits per lane (vshrn), so ctz(mask)/4 is the first-match index.

inline uint64_t NeonMask(uint8x16_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

size_t ByteNeon(const char* data, size_t n, unsigned char b) {
  const uint8x16_t pat = vdupq_n_u8(b);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t chunk =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint64_t mask = NeonMask(vceqq_u8(chunk, pat));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(mask)) / 4;
    }
  }
  return i + ByteScalar(data + i, n - i, b);
}

size_t EitherNeon(const char* data, size_t n, unsigned char a,
                  unsigned char b) {
  const uint8x16_t pat_a = vdupq_n_u8(a);
  const uint8x16_t pat_b = vdupq_n_u8(b);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t chunk =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint64_t mask =
        NeonMask(vorrq_u8(vceqq_u8(chunk, pat_a), vceqq_u8(chunk, pat_b)));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(mask)) / 4;
    }
  }
  return i + EitherScalar(data + i, n - i, a, b);
}
#endif  // SPEX_SCAN_NEON

// ---------------------------------------------------------------------------
// Dispatch: resolved once, at first use (thread-safe static init).

struct Ops {
  size_t (*find_byte)(const char*, size_t, unsigned char);
  size_t (*find_either)(const char*, size_t, unsigned char, unsigned char);
  const char* name;
};

Ops Resolve() {
  const char* env = std::getenv("SPEX_NO_SIMD");
  const bool forced_scalar =
      env != nullptr && env[0] != '\0' && env[0] != '0';
  if (!forced_scalar) {
#if defined(SPEX_SCAN_SSE2)
    return {ByteSse2, EitherSse2, "sse2"};
#elif defined(SPEX_SCAN_NEON)
    return {ByteNeon, EitherNeon, "neon"};
#elif defined(SPEX_SCAN_SWAR)
    return {ByteSwar, EitherSwar, "swar"};
#endif
  }
  return {ByteScalar, EitherScalar, "scalar"};
}

const Ops& ActiveOps() {
  static const Ops ops = Resolve();
  return ops;
}

}  // namespace

size_t FindByte(const char* data, size_t n, unsigned char b) {
  return ActiveOps().find_byte(data, n, b);
}

size_t FindEither(const char* data, size_t n, unsigned char a,
                  unsigned char b) {
  return ActiveOps().find_either(data, n, a, b);
}

size_t FindNotInTable(const char* data, size_t n,
                      const unsigned char table[256]) {
  for (size_t i = 0; i < n; ++i) {
    if (table[static_cast<unsigned char>(data[i])] == 0) return i;
  }
  return n;
}

const char* BackendName() { return ActiveOps().name; }

size_t FindByteScalar(const char* data, size_t n, unsigned char b) {
  return ByteScalar(data, n, b);
}

size_t FindEitherScalar(const char* data, size_t n, unsigned char a,
                        unsigned char b) {
  return EitherScalar(data, n, a, b);
}

}  // namespace scan
}  // namespace spex
