#include "xml/content_model.h"

#include <algorithm>
#include <cctype>

namespace spex {

int ContentModel::NewState() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

void ContentModel::AddEpsilon(int from, int to) {
  Edge e;
  e.epsilon = true;
  e.to = to;
  states_[from].edges.push_back(std::move(e));
}

void ContentModel::AddLabel(int from, int to, std::string label) {
  Edge e;
  e.epsilon = false;
  e.label = std::move(label);
  e.to = to;
  states_[from].edges.push_back(std::move(e));
}

void ContentModel::Closure(std::vector<int>* states) const {
  std::vector<bool> in_set(states_.size(), false);
  for (int s : *states) in_set[s] = true;
  std::vector<int> work = *states;
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    for (const Edge& e : states_[s].edges) {
      if (e.epsilon && !in_set[e.to]) {
        in_set[e.to] = true;
        states->push_back(e.to);
        work.push_back(e.to);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

std::vector<int> ContentModel::InitialStates() const {
  std::vector<int> states = {start_};
  Closure(&states);
  return states;
}

std::vector<int> ContentModel::Step(const std::vector<int>& states,
                                    const std::string& label) const {
  std::vector<int> next;
  for (int s : states) {
    for (const Edge& e : states_[s].edges) {
      if (!e.epsilon && e.label == label) next.push_back(e.to);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  Closure(&next);
  return next;
}

bool ContentModel::Accepts(const std::vector<int>& states) const {
  return std::binary_search(states.begin(), states.end(), accept_);
}

// ---------------------------------------------------------------------------
// Schema parsing.

// Parses one content-model expression with a Thompson construction.
class ContentModelParser {
 public:
  ContentModelParser(std::string_view text, ContentModel* model)
      : text_(text), model_(model) {}

  bool Parse(std::string* error) {
    model_->start_ = model_->NewState();
    model_->accept_ = model_->NewState();
    if (!ParseAlt(model_->start_, model_->accept_)) {
      if (error != nullptr) {
        *error = error_.empty() ? "bad content model" : error_;
      }
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "unexpected '" + std::string(1, text_[pos_]) +
                 "' in content model";
      }
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }

  std::string ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // alt := seq ('|' seq)*
  bool ParseAlt(int from, int to) {
    if (!ParseSeq(from, to)) return false;
    while (Eat('|')) {
      if (!ParseSeq(from, to)) return false;
    }
    return true;
  }

  // seq := post (',' post)*
  bool ParseSeq(int from, int to) {
    int current = from;
    for (;;) {
      SkipSpace();
      bool last = true;
      // Look ahead: a ',' after the next postfix item means more follow.
      size_t save = pos_;
      if (!SkipPostfixItem()) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') last = false;
      pos_ = save;

      int target = last ? to : model_->NewState();
      if (!ParsePostfix(current, target)) return false;
      current = target;
      if (!last) {
        Eat(',');
        continue;
      }
      return true;
    }
  }

  // Skips over one postfix item without building NFA states (lookahead).
  bool SkipPostfixItem() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      int depth = 0;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '(') ++depth;
        if (text_[pos_] == ')') {
          --depth;
          if (depth == 0) {
            ++pos_;
            break;
          }
        }
        ++pos_;
      }
      if (depth != 0) {
        error_ = "unbalanced '(' in content model";
        return false;
      }
    } else {
      std::string name = ReadName();
      if (name.empty()) {
        error_ = "expected a name or '(' in content model";
        return false;
      }
    }
    while (pos_ < text_.size() &&
           (text_[pos_] == '*' || text_[pos_] == '+' || text_[pos_] == '?')) {
      ++pos_;
    }
    return true;
  }

  // post := atom ('*' | '+' | '?')*
  bool ParsePostfix(int from, int to) {
    // Build the atom between fresh endpoints so the closure operators can
    // wire loops around it.
    int a = model_->NewState();
    int b = model_->NewState();
    if (!ParseAtom(a, b)) return false;
    bool star = false, plus = false, opt = false;
    for (;;) {
      if (Eat('*')) {
        star = true;
      } else if (Eat('+')) {
        plus = true;
      } else if (Eat('?')) {
        opt = true;
      } else {
        break;
      }
    }
    model_->AddEpsilon(from, a);
    model_->AddEpsilon(b, to);
    if (star || plus) model_->AddEpsilon(b, a);  // repeat
    if (star || opt) model_->AddEpsilon(from, to);  // skip
    return true;
  }

  // atom := NAME | '(' alt ')' | EMPTY | ANY | TEXT
  bool ParseAtom(int from, int to) {
    if (Eat('(')) {
      if (!ParseAlt(from, to)) return false;
      if (!Eat(')')) {
        error_ = "expected ')' in content model";
        return false;
      }
      return true;
    }
    std::string name = ReadName();
    if (name.empty()) {
      error_ = "expected a name or '(' in content model";
      return false;
    }
    if (name == "EMPTY") {
      model_->AddEpsilon(from, to);
      return true;
    }
    if (name == "ANY") {
      model_->is_any_ = true;
      model_->allows_text_ = true;
      model_->AddEpsilon(from, to);
      return true;
    }
    if (name == "TEXT") {
      model_->allows_text_ = true;
      model_->AddEpsilon(from, to);
      return true;
    }
    model_->AddLabel(from, to, std::move(name));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  ContentModel* model_;
  std::string error_;
};

bool ParseSchema(std::string_view text, Schema* out, std::string* error) {
  Schema schema;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    // Strip comments and whitespace.
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string_view::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": expected '='";
      }
      return false;
    }
    std::string name(line.substr(0, eq));
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
      name.pop_back();
    }
    std::string_view model_text = line.substr(eq + 1);
    if (name.empty()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": missing name";
      }
      return false;
    }
    if (name == "root") {
      std::string root(model_text);
      size_t b = root.find_first_not_of(" \t");
      size_t e = root.find_last_not_of(" \t");
      if (b == std::string::npos) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_number) + ": empty root";
        }
        return false;
      }
      schema.root = root.substr(b, e - b + 1);
      continue;
    }
    if (schema.elements.count(name) > 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": element " + name +
                 " declared twice";
      }
      return false;
    }
    auto model = std::make_shared<ContentModel>();
    ContentModelParser parser(model_text, model.get());
    std::string model_error;
    if (!parser.Parse(&model_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + " (" + name +
                 "): " + model_error;
      }
      return false;
    }
    schema.elements[name] = std::move(model);
  }
  *out = std::move(schema);
  return true;
}

// ---------------------------------------------------------------------------
// Streaming validation.

StreamingValidator::StreamingValidator(const Schema* schema,
                                       ValidatorOptions options)
    : schema_(schema), options_(options) {}

void StreamingValidator::Fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

void StreamingValidator::OnEvent(const StreamEvent& event) {
  if (!valid() || done_) return;
  switch (event.kind) {
    case EventKind::kStartDocument:
      break;
    case EventKind::kEndDocument:
      done_ = true;
      if (!stack_.empty()) Fail("document ended with open elements");
      break;
    case EventKind::kStartElement: {
      ++elements_checked_;
      // 1. The child must fit the parent's model.
      if (!stack_.empty()) {
        Frame& parent = stack_.back();
        if (parent.model != nullptr) {
          parent.states = parent.model->Step(parent.states, event.name);
          if (parent.states.empty()) {
            Fail("element " + parent.label + ": unexpected child " +
                 event.name);
          }
        }
      } else if (!schema_->root.empty() && event.name != schema_->root) {
        Fail("unexpected root element " + event.name + " (declared root: " +
             schema_->root + ")");
      }
      // 2. Open the child's own frame.
      Frame frame;
      frame.label = event.name;
      const bool parent_lenient =
          !stack_.empty() && stack_.back().lenient;
      auto it = schema_->elements.find(event.name);
      if (it != schema_->elements.end()) {
        if (it->second->is_any()) {
          frame.lenient = true;
        } else {
          frame.model = it->second.get();
          frame.states = frame.model->InitialStates();
        }
      } else if (parent_lenient || options_.allow_undeclared) {
        frame.lenient = true;  // tolerated: its subtree is unchecked too
      } else {
        Fail("undeclared element " + event.name);
      }
      stack_.push_back(std::move(frame));
      max_depth_ = std::max(max_depth_, static_cast<int>(stack_.size()));
      break;
    }
    case EventKind::kEndElement: {
      if (stack_.empty()) {
        Fail("unbalanced end element " + event.name);
        return;
      }
      Frame& frame = stack_.back();
      if (frame.model != nullptr && !frame.model->Accepts(frame.states)) {
        Fail("element " + frame.label + ": content ended too early");
      }
      stack_.pop_back();
      break;
    }
    case EventKind::kText: {
      if (stack_.empty()) return;
      Frame& frame = stack_.back();
      const ContentModel* model = frame.model;
      bool text_ok = model == nullptr || model->allows_text();
      if (!text_ok && options_.ignore_whitespace_text) {
        text_ok = event.text.find_first_not_of(" \t\r\n") ==
                  std::string::npos;
      }
      if (!text_ok) {
        Fail("element " + frame.label + ": character data not allowed");
      }
      break;
    }
  }
}

bool ValidateEvents(const Schema& schema,
                    const std::vector<StreamEvent>& events,
                    std::string* error, ValidatorOptions options) {
  StreamingValidator validator(&schema, options);
  for (const StreamEvent& e : events) validator.OnEvent(e);
  if (!validator.valid()) {
    if (error != nullptr) *error = validator.error();
    return false;
  }
  return true;
}

}  // namespace spex
