// In-memory XML document tree (the "XML Tree" of Fig. 1, after the XPath data
// model).  Used by the DOM baseline evaluator and as a test oracle.

#ifndef SPEX_XML_DOM_H_
#define SPEX_XML_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xml/stream_event.h"

namespace spex {

// A node in the document tree.  Nodes are owned by their Document via a flat
// arena (stable indices), which keeps construction allocation-cheap for
// multi-million-node documents.
struct DomNode {
  enum class Kind : uint8_t { kElement, kText };

  Kind kind = Kind::kElement;
  std::string label;         // element label (empty for text nodes)
  std::string text;          // character data (text nodes only)
  int32_t parent = -1;       // index into Document::nodes, -1 for the root
  int32_t first_child = -1;  // head of the child list
  int32_t next_sibling = -1;
  int32_t depth = 0;           // root element has depth 1
  int64_t document_order = 0;  // position in document order (0 = root elem)
};

// A parsed document.  `nodes[0]` is the root element.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const DomNode& node(int32_t id) const { return nodes_[id]; }
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  int32_t root() const { return empty() ? -1 : 0; }

  // Children of `id` in document order.
  std::vector<int32_t> Children(int32_t id) const;
  // Element children only.
  std::vector<int32_t> ElementChildren(int32_t id) const;

  // Replays the subtree rooted at `id` (inclusive) as document messages,
  // without <$> / </$>.
  void EmitSubtree(int32_t id, EventSink* sink) const;
  // Replays the whole document including <$> and </$>.
  void EmitDocument(EventSink* sink) const;

  // Serializes the subtree rooted at `id`.
  std::string SubtreeToXml(int32_t id) const;

  int max_depth() const { return max_depth_; }
  int64_t element_count() const { return element_count_; }

 private:
  friend class DomBuilder;

  std::vector<DomNode> nodes_;
  int max_depth_ = 0;
  int64_t element_count_ = 0;
};

// Builds a Document from a stream of document messages.
class DomBuilder : public EventSink {
 public:
  DomBuilder();

  void OnEvent(const StreamEvent& event) override;

  // True once </$> has been received and the tree is complete.
  bool done() const { return done_; }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Takes the completed document.  Must only be called when done() && ok().
  Document TakeDocument();

 private:
  int32_t AddNode(DomNode node);

  Document doc_;
  std::vector<int32_t> stack_;   // open element indices
  std::vector<int32_t> last_child_;  // last child of each open element
  bool done_ = false;
  std::string error_;
  int64_t order_counter_ = 0;
};

// Parses an XML string into a Document.  Returns false on error.
bool ParseXmlToDocument(std::string_view text, Document* out,
                        std::string* error = nullptr);

// Builds a Document directly from an event vector (must be well-formed).
bool EventsToDocument(const std::vector<StreamEvent>& events, Document* out,
                      std::string* error = nullptr);

}  // namespace spex

#endif  // SPEX_XML_DOM_H_
