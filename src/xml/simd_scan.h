// Bulk byte-run scanners for the streaming XML parser (DESIGN.md §11).
//
// The parser's hot states (character data, CDATA bodies, comments, quoted
// attribute values) spend almost all their time looking for the next byte
// that can change the state: '<' or '&' in content, ']' in CDATA, the
// closing quote in an attribute value.  These helpers find that byte over
// whole 8/16-byte groups at a time — a SWAR (SIMD-within-a-register)
// 64-bit baseline with an SSE2 (x86-64) or NEON (aarch64) lane when the
// target compiles one in — instead of one switch dispatch per byte.
//
// Contract: every function returns the index of the FIRST byte in
// [data, data+n) satisfying the predicate, or n if none does.  All backends
// are byte-for-byte identical for every input and every split of the input
// (validated exhaustively by simd_scan_test.cc), so the parser's event
// stream, error messages and byte positions are independent of the backend.
//
// Backend selection:
//  * compile time — building with -DSPEX_NO_SIMD (the CMake SPEX_NO_SIMD
//    option) compiles only the scalar backend;
//  * run time — setting the environment variable SPEX_NO_SIMD=1 forces the
//    scalar backend even in a full build (read once, at first use).

#ifndef SPEX_XML_SIMD_SCAN_H_
#define SPEX_XML_SIMD_SCAN_H_

#include <cstddef>

namespace spex {
namespace scan {

// First byte equal to `b`, or n.
size_t FindByte(const char* data, size_t n, unsigned char b);

// First byte equal to `a` or to `b`, or n.  (Content scanning: '<' or '&'.)
size_t FindEither(const char* data, size_t n, unsigned char a,
                  unsigned char b);

// First byte whose 256-entry table slot is zero, or n.  Used for the
// irregular XML character classes (name chars, attribute-region chars),
// which a 64-bit SWAR predicate cannot express; the table walk is scalar in
// every backend.
size_t FindNotInTable(const char* data, size_t n,
                      const unsigned char table[256]);

// Name of the backend the dispatched functions above resolve to:
// "sse2", "neon", "swar" or "scalar".
const char* BackendName();

// Direct entry points bypassing dispatch, for differential tests and the
// scalar reference: these must agree with the dispatched functions on every
// input.
size_t FindByteScalar(const char* data, size_t n, unsigned char b);
size_t FindEitherScalar(const char* data, size_t n, unsigned char a,
                        unsigned char b);

}  // namespace scan
}  // namespace spex

#endif  // SPEX_XML_SIMD_SCAN_H_
