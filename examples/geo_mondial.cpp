// Geographic queries on a MONDIAL-like database — the paper's small,
// highly-structured §VI scenario, exercising all four query classes plus
// the XPath front-end and the conjunctive-query extension (§VII).
//
//   $ ./geo_mondial [--scale=S]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cq/conjunctive.h"
#include "spex/spex.h"

namespace {

using spex::StreamEvent;

void RunRpeq(const char* title, const char* query_text,
             const std::vector<StreamEvent>& events) {
  spex::ExprPtr query = spex::MustParseRpeq(query_text);
  spex::CountingResultSink sink;
  spex::SpexEngine engine(*query, &sink);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  std::printf("%-28s %-42s -> %lld results\n", title, query_text,
              static_cast<long long>(sink.results()));
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
  }

  spex::RecordingEventSink recording;
  spex::GeneratorStats gen = spex::GenerateMondialLike(7, scale, &recording);
  const std::vector<StreamEvent>& events = recording.events();
  std::printf("MONDIAL-like database: %lld elements, depth %d\n\n",
              static_cast<long long>(gen.elements), gen.max_depth);

  std::printf("-- the four §VI query classes --\n");
  RunRpeq("class 1 (structural)", "_*.province.city", events);
  RunRpeq("class 2 (future cond.)", "_*.country[province].name", events);
  RunRpeq("class 3 (nested results)", "_*._", events);
  RunRpeq("class 4 (past cond.)", "_*.country[province].religions", events);

  std::printf("\n-- the same via the XPath front-end --\n");
  {
    spex::ExprPtr query = spex::MustParseXPath("//country[province]/name");
    std::printf("%-28s %-42s -> rpeq %s\n", "XPath", "//country[province]/name",
                query->ToString().c_str());
    spex::CountingResultSink sink;
    spex::SpexEngine engine(*query, &sink);
    for (const StreamEvent& e : events) engine.OnEvent(e);
    std::printf("%-28s %-42s -> %lld results\n", "", "",
                static_cast<long long>(sink.results()));
  }

  std::printf("\n-- a conjunctive query with two heads (§VII) --\n");
  auto cq = spex::MustParseConjunctiveQuery(
      "q(N,C) :- Root(_*.country) X, X(name) N, X(province) P, P(city) C");
  std::printf("%s\n", cq->ToString().c_str());
  std::string error;
  auto per_head = spex::EvaluateConjunctive(*cq, events, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "cq error: %s\n", error.c_str());
    return 1;
  }
  std::printf("  N (country names, where the country has a province with a "
              "city): %zu\n", per_head[0].size());
  std::printf("  C (cities of such countries): %zu\n", per_head[1].size());
  if (!per_head[0].empty()) {
    std::printf("  first N fragment: %s\n", per_head[0][0].c_str());
  }

  std::printf("\n-- fragments, not just counts --\n");
  spex::ExprPtr query = spex::MustParseRpeq("_*.country[province].name");
  spex::SerializingResultSink sink;
  spex::SpexEngine engine(*query, &sink);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  for (size_t i = 0; i < sink.results().size() && i < 3; ++i) {
    std::printf("  %s\n", sink.results()[i].c_str());
  }
  std::printf("  ... (%zu total)\n", sink.results().size());
  return 0;
}
