// Quickstart: parse a query, stream an XML document through the engine,
// print the matching fragments.
//
//   $ ./quickstart                              # built-in demo document
//   $ ./quickstart '_*.book[author].title'      # your query, demo document
//   $ ./quickstart '_*.a' - < document.xml      # your query, stdin
//
// The first argument is an rpeq query (see README); pass "-" as the second
// argument to read the document from stdin.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "spex/spex.h"

namespace {

constexpr char kDemoDocument[] = R"(
<catalog>
  <book>
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <year>2000</year>
  </book>
  <book>
    <title>Anonymous Pamphlet</title>
    <year>1848</year>
  </book>
  <book>
    <title>The Theory of Parsing</title>
    <author>Aho</author>
    <author>Ullman</author>
  </book>
</catalog>
)";

}  // namespace

int main(int argc, char** argv) {
  const std::string query_text =
      argc > 1 ? argv[1] : "_*.book[author].title";

  // 1. Parse the regular path expression with qualifiers.
  spex::ParseResult parsed = spex::ParseRpeq(query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query error at %zu: %s\n", parsed.error_position,
                 parsed.error.c_str());
    return 1;
  }
  std::printf("query: %s  (%d constructs, %d qualifiers)\n",
              parsed.expr->ToString().c_str(), parsed.expr->Size(),
              parsed.expr->QualifierCount());

  // 2. Compile it into a SPEX transducer network with a result sink.
  spex::SerializingResultSink results;
  spex::SpexEngine engine(*parsed.expr, &results);
  std::printf("network: %d transducers\n%s\n",
              engine.network().node_count(),
              engine.network().Describe().c_str());

  // 3. Stream the document through the network.  The engine is an
  //    EventSink, so the incremental XML parser feeds it directly: the
  //    document is never materialized.
  spex::XmlParser parser(&engine);
  bool ok;
  if (argc > 2 && std::string(argv[2]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    ok = parser.Parse(buffer.str());
  } else {
    ok = parser.Parse(kDemoDocument);
  }
  if (!ok) {
    std::fprintf(stderr, "XML error: %s\n", parser.error().c_str());
    return 1;
  }

  // 4. Print the result fragments (document order).
  std::printf("%zu result(s):\n", results.results().size());
  for (const std::string& fragment : results.results()) {
    std::printf("  %s\n", fragment.c_str());
  }

  // 5. Resource accounting (the paper's §V bounds, measured).
  std::printf("\nstats: %s\n", engine.ComputeStats().ToString().c_str());
  return 0;
}
