// Continuous-service monitoring over an *unbounded* stream — the paper's
// second §I motivation (stock exchange / measurement feeds) and the §VI
// stability experiment ("application-generated infinite streams ... stable
// in cases where the depth of the tree conveyed in the stream is bounded").
//
// An endless feed of <tick> records is evaluated against an alert query;
// matches are acted upon the moment the fragment completes, and the process
// reports its (flat) resource usage as the stream grows.
//
//   $ ./stream_monitor [--ticks=N]

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "spex/spex.h"

namespace {

using spex::StreamEvent;

double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// Acts on every alert as soon as its fragment is complete: progressive,
// per-record delivery with no end-of-document in sight.
class AlertHandler : public spex::ResultSink {
 public:
  void OnResultBegin(int64_t) override { current_.clear(); }
  void OnResultEvent(const StreamEvent& event) override {
    if (event.kind == spex::EventKind::kText) current_ += event.text;
  }
  void OnResultEnd(int64_t) override {
    ++alerts_;
    if (alerts_ <= 3) {  // show the first few
      std::printf("  ALERT #%lld: price=%s\n",
                  static_cast<long long>(alerts_), current_.c_str());
    }
  }
  int64_t alerts() const { return alerts_; }

 private:
  std::string current_;
  int64_t alerts_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t ticks = 2000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ticks=", 8) == 0) {
      ticks = std::atoll(argv[i] + 8);
    }
  }

  // Alert on the price of any tick that carries an <alert/> marker.
  spex::ExprPtr query = spex::MustParseRpeq("feed.tick[alert].price");
  AlertHandler handler;

  // The engine's own watermark API does the monitoring: the progress
  // callback fires from inside OnEvent and reports the same fields as
  // `spexquery --progress` (events, rate, buffered fragments, live formula
  // nodes, ...).  Each line is flat in the number of ticks — the §VI
  // stability claim, now read off the metrics the engine publishes anyway.
  spex::EngineOptions options;
  options.observe = spex::ObserveLevel::kCounters;
  options.progress.every_events = 400000;
  options.progress.callback = [](const spex::Watermark& w) {
    std::printf("progress: %s rss=%.1fMB\n", w.ToString().c_str(),
                PeakRssMb());
  };
  spex::SpexEngine engine(*query, &handler, options);

  std::printf("monitoring %lld ticks with query %s\n",
              static_cast<long long>(ticks), query->ToString().c_str());

  spex::EndlessEventSource source(2026);
  spex::FunctionEventSink feed(
      [&](const StreamEvent& e) { engine.OnEvent(e); });
  source.Begin(&feed);

  for (int64_t i = 1; i <= ticks; ++i) {
    source.NextRecord(&feed);
  }
  spex::Watermark final_mark = engine.CurrentWatermark();
  std::printf("final: %s alerts=%lld\n", final_mark.ToString().c_str(),
              static_cast<long long>(handler.alerts()));
  // Note: the document is never closed — the feed is infinite.  Every
  // number above is flat in the number of ticks: the engine's state depends
  // only on the (bounded) depth of the tree conveyed in the stream.
  std::printf("done; the stream could continue indefinitely.\n");
  return 0;
}
