// Selective dissemination of information (SDI) — the paper's §I motivating
// application: a stream of documents is filtered against the *profiles*
// (queries) of many subscribers before being distributed.
//
// Each subscriber registers an rpeq profile; every incoming news item is
// pushed once through each subscriber's network, and matched fragments are
// delivered immediately.  Demonstrates (a) many live engines on one stream,
// (b) progressive per-record delivery, (c) constant memory per subscriber.
//
//   $ ./sdi_filter [--items=N]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "spex/multi_query.h"
#include "spex/spex.h"

namespace {

using spex::EventSink;
using spex::SpexEngine;
using spex::StreamEvent;

// A subscriber: a profile query plus a delivery callback.
class Subscriber {
 public:
  Subscriber(std::string name, const std::string& profile)
      : name_(std::move(name)),
        query_(spex::MustParseRpeq(profile)),
        engine_(std::make_unique<SpexEngine>(*query_, &sink_)) {}

  void OnEvent(const StreamEvent& event) { engine_->OnEvent(event); }

  const std::string& name() const { return name_; }
  int64_t delivered() const { return sink_.results(); }
  std::string profile() const { return query_->ToString(); }
  spex::RunStats stats() const { return engine_->ComputeStats(); }

 private:
  std::string name_;
  spex::ExprPtr query_;
  spex::CountingResultSink sink_;
  std::unique_ptr<SpexEngine> engine_;
};

// Fans one stream out to all subscribers.
class Broker : public EventSink {
 public:
  void Register(std::string name, const std::string& profile) {
    subscribers_.push_back(
        std::make_unique<Subscriber>(std::move(name), profile));
  }

  void OnEvent(const StreamEvent& event) override {
    for (auto& s : subscribers_) s->OnEvent(event);
  }

  const std::vector<std::unique_ptr<Subscriber>>& subscribers() const {
    return subscribers_;
  }

 private:
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
};

// Emits one news item into the (unbounded) stream.
void EmitItem(EventSink* sink, int i) {
  auto leaf = [&](const char* label, const std::string& text) {
    sink->OnEvent(StreamEvent::StartElement(label));
    sink->OnEvent(StreamEvent::Text(text));
    sink->OnEvent(StreamEvent::EndElement(label));
  };
  sink->OnEvent(StreamEvent::StartElement("item"));
  leaf("category", i % 3 == 0 ? "markets" : i % 3 == 1 ? "tech" : "sport");
  if (i % 4 == 0) {
    sink->OnEvent(StreamEvent::StartElement("urgent"));
    sink->OnEvent(StreamEvent::EndElement("urgent"));
  }
  leaf("headline", "headline-" + std::to_string(i));
  if (i % 5 == 0) {
    sink->OnEvent(StreamEvent::StartElement("body"));
    leaf("quote", "q" + std::to_string(i));
    sink->OnEvent(StreamEvent::EndElement("body"));
  }
  sink->OnEvent(StreamEvent::EndElement("item"));
}

}  // namespace

int main(int argc, char** argv) {
  int64_t items = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--items=", 8) == 0) {
      items = std::atoll(argv[i] + 8);
    }
  }

  Broker broker;
  // Profiles use the four §VI query classes.
  broker.Register("alice", "feed.item[urgent].headline");
  broker.Register("bob", "feed.item.category");
  broker.Register("carol", "_*.item[body[quote]]");
  broker.Register("dave", "feed.item[category].headline");
  broker.Register("erin", "_*.quote");

  std::printf("SDI demo: %lld items through %zu subscriber profiles\n\n",
              static_cast<long long>(items), broker.subscribers().size());

  broker.OnEvent(StreamEvent::StartDocument());
  broker.OnEvent(StreamEvent::StartElement("feed"));
  for (int64_t i = 0; i < items; ++i) EmitItem(&broker, static_cast<int>(i));
  broker.OnEvent(StreamEvent::EndElement("feed"));
  broker.OnEvent(StreamEvent::EndDocument());

  std::printf("%-8s %-34s %10s %12s %12s\n", "name", "profile", "delivered",
              "stack_peak", "buffered_pk");
  for (const auto& s : broker.subscribers()) {
    spex::RunStats stats = s->stats();
    std::printf("%-8s %-34s %10lld %12lld %12lld\n", s->name().c_str(),
                s->profile().c_str(), static_cast<long long>(s->delivered()),
                static_cast<long long>(stats.max_depth_stack),
                static_cast<long long>(stats.output.buffered_events_peak));
  }
  std::printf("\nAll stacks and buffers stay bounded by the item depth: the "
              "stream could run forever.\n");

  // The same profiles through ONE shared network (§IX multi-query
  // optimization): common prefixes are compiled once.
  std::vector<std::unique_ptr<spex::CountingResultSink>> sinks;
  spex::MultiQueryEngine mq;
  for (const auto& s : broker.subscribers()) {
    sinks.push_back(std::make_unique<spex::CountingResultSink>());
    mq.AddQuery(s->profile(), sinks.back().get());
  }
  mq.Finalize();
  mq.OnEvent(StreamEvent::StartDocument());
  mq.OnEvent(StreamEvent::StartElement("feed"));
  for (int64_t i = 0; i < items; ++i) EmitItem(&mq, static_cast<int>(i));
  mq.OnEvent(StreamEvent::EndElement("feed"));
  mq.OnEvent(StreamEvent::EndDocument());
  std::printf("\nshared network: %d transducers instead of %d; identical "
              "deliveries: %s\n",
              mq.shared_degree(), mq.naive_degree(), [&] {
                for (size_t i = 0; i < sinks.size(); ++i) {
                  if (sinks[i]->results() !=
                      broker.subscribers()[i]->delivered()) {
                    return "NO";
                  }
                }
                return "yes";
              }());
  return 0;
}
