#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): configure, build and run the full test suite
# exactly the way the driver does.  Usage:
#
#   tools/run_tier1.sh           # default preset (RelWithDebInfo, build/)
#   tools/run_tier1.sh asan      # address+UB sanitizer preset (build-asan/)
#   tools/run_tier1.sh ubsan     # UB sanitizer alone (build-ubsan/)
#   tools/run_tier1.sh tsan      # thread sanitizer preset (build-tsan/);
#                                # ctest runs the concurrency-relevant subset
#   tools/run_tier1.sh scalar    # SPEX_NO_SIMD build (build-scalar/): SIMD
#                                # lanes compiled out AND runtime dispatch
#                                # forced scalar; full suite
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
preset="${1:-default}"

# The scalar preset compiles the SWAR/SIMD scanner lanes out; force the
# runtime dispatch to scalar as well so the smokes below cover the same
# configuration the ctest preset pins via its environment.
if [ "$preset" = "scalar" ]; then export SPEX_NO_SIMD=1; fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"

# Observability smoke: the metrics exposition must be produced (and be
# non-trivial) on a real query over the bundled example document.
binary_dir="build"
if [ "$preset" != "default" ]; then binary_dir="build-$preset"; fi
metrics_out="$("$binary_dir/tools/spexquery" --count --metrics=json \
  '_*.book[author].title' examples/data/catalog.xml 2>&1 >/dev/null)"
echo "$metrics_out" | grep -q '"spex_transducer_messages_in"' || {
  echo "tier1: spexquery --metrics=json smoke failed:" >&2
  echo "$metrics_out" >&2
  exit 1
}
echo "tier1: metrics smoke OK"

# EXPLAIN/PROFILE smoke: the static plan and the timed report must render.
"$binary_dir/tools/spexquery" --explain '_*.book[author].title' \
  examples/data/catalog.xml | grep -q 'EXPLAIN' || {
  echo "tier1: spexquery --explain smoke failed" >&2
  exit 1
}
"$binary_dir/tools/spexquery" --profile '_*.book[author].title' \
  examples/data/catalog.xml | grep -q 'TOTAL' || {
  echo "tier1: spexquery --profile smoke failed" >&2
  exit 1
}
echo "tier1: explain/profile smoke OK"

# Concurrent-runtime smoke: fan the bundled example document across a small
# engine pool and check the serving summary (under asan/tsan this also puts
# the worker queues and the shared query cache through sanitized traffic).
serve_dir="$(mktemp -d)"
mkdir "$serve_dir/docs"
cp examples/data/catalog.xml "$serve_dir/docs/"
printf '_*.book[author].title\n_*.title\n' > "$serve_dir/queries.txt"
# (capture, don't pipe into grep -q: under pipefail an early grep exit
# would SIGPIPE the server mid-write and fail the pipeline spuriously)
serve_out="$("$binary_dir/tools/spexserve" --queries="$serve_dir/queries.txt" \
  --threads=2 "$serve_dir/docs" 2>&1)" || {
  echo "tier1: spexserve smoke failed:" >&2
  echo "$serve_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$serve_out" | grep -q 'sessions on 2 threads' || {
  echo "tier1: spexserve smoke failed:" >&2
  echo "$serve_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "tier1: spexserve smoke OK"

# Chaos smoke: the same serving run with every session faulted (seeded
# corruption / truncation / tiny limits / worker stalls).  The server must
# answer every frame — result line or structured ERROR line — and exit
# cleanly; under the sanitizer presets this also proves the failure paths
# are asan/tsan clean.
chaos_out="$("$binary_dir/tools/spexserve" --queries="$serve_dir/queries.txt" \
  --threads=2 --chaos=7 --chaos-rate=100 "$serve_dir/docs" 2>&1)" || {
  echo "tier1: spexserve chaos smoke failed:" >&2
  echo "$chaos_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$chaos_out" | grep -q 'chaos injection on, seed=7' || {
  echo "tier1: spexserve chaos smoke missing chaos banner:" >&2
  echo "$chaos_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
rm -rf "$serve_dir"
echo "tier1: spexserve chaos smoke OK"

# Perf-regression report (informational here — tier-1 machines are too
# noisy to gate on; the CI bench-smoke job gates for real with
# bench_compare's exit code against the committed baseline).
if [ "$preset" = "default" ]; then
  latest_baseline="$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)"
  if [ -n "$latest_baseline" ]; then
    bench_json="$(mktemp)"
    "$binary_dir/bench/micro_benchmarks" --json "$bench_json" --observe=off \
      2>/dev/null
    "$binary_dir/tools/bench_compare" --report-only \
      "$latest_baseline" "$bench_json" || true
    rm -f "$bench_json"
  fi
fi
