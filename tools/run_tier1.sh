#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): configure, build and run the full test suite
# exactly the way the driver does.  Usage:
#
#   tools/run_tier1.sh           # default preset (RelWithDebInfo, build/)
#   tools/run_tier1.sh asan      # address+UB sanitizer preset (build-asan/)
#   tools/run_tier1.sh ubsan     # UB sanitizer alone (build-ubsan/)
#   tools/run_tier1.sh tsan      # thread sanitizer preset (build-tsan/);
#                                # ctest runs the concurrency-relevant subset
#   tools/run_tier1.sh scalar    # SPEX_NO_SIMD build (build-scalar/): SIMD
#                                # lanes compiled out AND runtime dispatch
#                                # forced scalar; full suite
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
preset="${1:-default}"

# The scalar preset compiles the SWAR/SIMD scanner lanes out; force the
# runtime dispatch to scalar as well so the smokes below cover the same
# configuration the ctest preset pins via its environment.
if [ "$preset" = "scalar" ]; then export SPEX_NO_SIMD=1; fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"

# Observability smoke: the metrics exposition must be produced (and be
# non-trivial) on a real query over the bundled example document.
binary_dir="build"
if [ "$preset" != "default" ]; then binary_dir="build-$preset"; fi
metrics_out="$("$binary_dir/tools/spexquery" --count --metrics=json \
  '_*.book[author].title' examples/data/catalog.xml 2>&1 >/dev/null)"
echo "$metrics_out" | grep -q '"spex_transducer_messages_in"' || {
  echo "tier1: spexquery --metrics=json smoke failed:" >&2
  echo "$metrics_out" >&2
  exit 1
}
echo "tier1: metrics smoke OK"

# EXPLAIN/PROFILE smoke: the static plan and the timed report must render.
"$binary_dir/tools/spexquery" --explain '_*.book[author].title' \
  examples/data/catalog.xml | grep -q 'EXPLAIN' || {
  echo "tier1: spexquery --explain smoke failed" >&2
  exit 1
}
"$binary_dir/tools/spexquery" --profile '_*.book[author].title' \
  examples/data/catalog.xml | grep -q 'TOTAL' || {
  echo "tier1: spexquery --profile smoke failed" >&2
  exit 1
}
echo "tier1: explain/profile smoke OK"

# Concurrent-runtime smoke: fan the bundled example document across a small
# engine pool and check the serving summary (under asan/tsan this also puts
# the worker queues and the shared query cache through sanitized traffic).
serve_dir="$(mktemp -d)"
mkdir "$serve_dir/docs"
cp examples/data/catalog.xml "$serve_dir/docs/"
printf '_*.book[author].title\n_*.title\n' > "$serve_dir/queries.txt"
# (capture, don't pipe into grep -q: under pipefail an early grep exit
# would SIGPIPE the server mid-write and fail the pipeline spuriously)
serve_out="$("$binary_dir/tools/spexserve" --queries="$serve_dir/queries.txt" \
  --threads=2 "$serve_dir/docs" 2>&1)" || {
  echo "tier1: spexserve smoke failed:" >&2
  echo "$serve_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
# The serving summary is a structured logfmt line now:
#   ts=... level=info msg="run complete" documents=1 queries=2 sessions=2 threads=2
echo "$serve_out" | grep -q 'msg="run complete".*sessions=2 threads=2' || {
  echo "tier1: spexserve smoke failed:" >&2
  echo "$serve_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$serve_out" | grep -q 'msg=latency feed_to_result_p50_us=' || {
  echo "tier1: spexserve smoke missing latency summary:" >&2
  echo "$serve_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "tier1: spexserve smoke OK"

# Admin-plane smoke: serve with --admin-port=0 (ephemeral), scrape /metrics
# and /healthz off the logged port while the server lingers, then SIGTERM
# and require a clean (exit 0) drain.  Scraping uses bash /dev/tcp so the
# smoke needs no curl on tier-1 machines.
admin_log="$serve_dir/admin.log"
"$binary_dir/tools/spexserve" --queries="$serve_dir/queries.txt" \
  --threads=2 --admin-port=0 "$serve_dir/docs" \
  >"$serve_dir/admin.out" 2>"$admin_log" &
admin_pid=$!
admin_port=""
for _ in $(seq 1 100); do
  admin_port="$(sed -n 's/.*msg="admin plane listening" port=\([0-9]*\).*/\1/p' \
    "$admin_log" | head -1)"
  [ -n "$admin_port" ] && break
  kill -0 "$admin_pid" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$admin_port" ]; then
  echo "tier1: admin smoke: no listening port logged" >&2
  cat "$admin_log" >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
fi
scrape() {
  # Minimal HTTP GET via /dev/tcp; prints the response (headers + body).
  exec 3<>"/dev/tcp/127.0.0.1/$admin_port" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' \
    "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}
metrics_scrape="$(scrape /metrics)"
echo "$metrics_scrape" | grep -q '# TYPE spex_pool_events_processed counter' || {
  echo "tier1: admin smoke: /metrics scrape missing pool counters" >&2
  echo "$metrics_scrape" | head -20 >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
}
healthz_scrape="$(scrape /healthz)"
echo "$healthz_scrape" | grep -q '"status": "ok"' || {
  echo "tier1: admin smoke: /healthz scrape unhealthy" >&2
  echo "$healthz_scrape" >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
}
echo "$healthz_scrape" | grep -q '"simd_backend"' || {
  echo "tier1: admin smoke: /healthz missing simd_backend" >&2
  echo "$healthz_scrape" >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
}
queries_scrape="$(scrape '/queries?sort=events&k=5')"
echo "$queries_scrape" | grep -q 'QUERIES (sort=events' || {
  echo "tier1: admin smoke: /queries scrape missing table" >&2
  echo "$queries_scrape" | head -20 >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
}
flight_scrape="$(scrape /flight)"
echo "$flight_scrape" | grep -q '"flights"' || {
  echo "tier1: admin smoke: /flight scrape missing flights array" >&2
  echo "$flight_scrape" | head -20 >&2
  kill "$admin_pid" 2>/dev/null || true
  rm -rf "$serve_dir"
  exit 1
}
kill -TERM "$admin_pid"
admin_rc=0
wait "$admin_pid" || admin_rc=$?
if [ "$admin_rc" -ne 0 ]; then
  echo "tier1: admin smoke: server exited $admin_rc after SIGTERM" >&2
  cat "$admin_log" >&2
  rm -rf "$serve_dir"
  exit 1
fi
grep -q 'catalog.xml' "$serve_dir/admin.out" || {
  echo "tier1: admin smoke: no results on stdout" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "tier1: admin plane smoke OK (port $admin_port)"

# Chaos smoke: the same serving run with every session faulted (seeded
# corruption / truncation / tiny limits / worker stalls).  The server must
# answer every frame — result line or structured ERROR line — and exit
# cleanly; under the sanitizer presets this also proves the failure paths
# are asan/tsan clean.
chaos_out="$("$binary_dir/tools/spexserve" --queries="$serve_dir/queries.txt" \
  --threads=2 --chaos=7 --chaos-rate=100 "$serve_dir/docs" 2>&1)" || {
  echo "tier1: spexserve chaos smoke failed:" >&2
  echo "$chaos_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$chaos_out" | grep -q 'msg="chaos injection on" seed=7' || {
  echo "tier1: spexserve chaos smoke missing chaos banner:" >&2
  echo "$chaos_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "tier1: spexserve chaos smoke OK"

# Slow-query / flight-dump smoke: throttle every session into a governor
# breach (--max-events=1) and require the structured post-mortem trail —
# one msg="slow query" and one msg="flight dump" record per failed session
# (failed runs always log, regardless of thresholds).
throttled_out="$("$binary_dir/tools/spexserve" \
  --queries="$serve_dir/queries.txt" --threads=2 --max-events=1 \
  "$serve_dir/docs" 2>&1)" || {
  echo "tier1: spexserve throttled smoke failed:" >&2
  echo "$throttled_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$throttled_out" | grep -q 'msg="slow query"' || {
  echo "tier1: throttled smoke missing slow-query record:" >&2
  echo "$throttled_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
echo "$throttled_out" | grep -q 'msg="flight dump"' || {
  echo "tier1: throttled smoke missing flight dump:" >&2
  echo "$throttled_out" >&2
  rm -rf "$serve_dir"
  exit 1
}
rm -rf "$serve_dir"
echo "tier1: slow-query/flight smoke OK"

# Perf-regression report (informational here — tier-1 machines are too
# noisy to gate on; the CI bench-smoke job gates for real with
# bench_compare's exit code against the committed baseline).
if [ "$preset" = "default" ]; then
  latest_baseline="$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)"
  if [ -n "$latest_baseline" ]; then
    bench_json="$(mktemp)"
    "$binary_dir/bench/micro_benchmarks" --json "$bench_json" --observe=off \
      2>/dev/null
    "$binary_dir/tools/bench_compare" --report-only \
      "$latest_baseline" "$bench_json" || true
    rm -f "$bench_json"
  fi
fi
