#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): configure, build and run the full test suite
# exactly the way the driver does.  Usage:
#
#   tools/run_tier1.sh           # default preset (RelWithDebInfo, build/)
#   tools/run_tier1.sh asan      # address+UB sanitizer preset (build-asan/)
#
# Exits non-zero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
preset="${1:-default}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"
