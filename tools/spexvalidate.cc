// spexvalidate — streaming XML validation against a content-model schema
// (the §VIII [21] substrate): memory bounded by the document depth, never
// by its size.
//
//   spexvalidate SCHEMA.cms [FILE]      validate FILE (or stdin)
//   spexvalidate --allow-undeclared ... tolerate undeclared elements
//
// Schema syntax: see src/xml/content_model.h.  Exit code 0 = valid.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "xml/content_model.h"
#include "xml/xml_parser.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: spexvalidate [--allow-undeclared] SCHEMA [FILE]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spex::ValidatorOptions options;
  std::string schema_path;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--allow-undeclared") {
      options.allow_undeclared = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (schema_path.empty()) {
      schema_path = arg;
    } else if (file.empty()) {
      file = arg;
    } else {
      return Usage();
    }
  }
  if (schema_path.empty()) return Usage();

  std::string schema_text;
  if (!ReadFile(schema_path, &schema_text)) {
    std::fprintf(stderr, "cannot open schema %s\n", schema_path.c_str());
    return 1;
  }
  spex::Schema schema;
  std::string error;
  if (!spex::ParseSchema(schema_text, &schema, &error)) {
    std::fprintf(stderr, "schema error: %s\n", error.c_str());
    return 1;
  }

  spex::StreamingValidator validator(&schema, options);
  // The parser publishes its byte/event/depth gauges into this registry;
  // the summary line below reads them back from a snapshot.
  spex::obs::MetricRegistry registry;
  spex::XmlParserOptions parser_options;
  parser_options.metrics = &registry;
  spex::XmlParser parser(&validator, parser_options);
  bool ok = true;
  std::string chunk(1 << 16, '\0');
  if (file.empty()) {
    while (ok && std::cin.read(chunk.data(), chunk.size()),
           std::cin.gcount() > 0) {
      ok = parser.Feed(std::string_view(
          chunk.data(), static_cast<size_t>(std::cin.gcount())));
      if (!ok) break;
    }
  } else {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    while (ok && in.read(chunk.data(), chunk.size()), in.gcount() > 0) {
      ok = parser.Feed(
          std::string_view(chunk.data(), static_cast<size_t>(in.gcount())));
      if (!ok) break;
    }
  }
  const bool fed_ok = ok;
  if (ok) ok = parser.Finish();
  if (!ok) {
    // A document that fed cleanly but fails Finish() ended mid-stream
    // (inside markup, or with elements still open): report it as truncation
    // rather than a generic well-formedness error.
    if (fed_ok) {
      std::fprintf(stderr,
                   "truncated document: %s (consumed %lld bytes, depth %d "
                   "still open)\n",
                   parser.error().c_str(),
                   static_cast<long long>(parser.bytes_consumed()),
                   parser.depth());
    } else {
      std::fprintf(stderr, "XML error: %s\n", parser.error().c_str());
    }
    return 1;
  }
  if (!validator.valid()) {
    std::fprintf(stderr, "invalid: %s\n", validator.error().c_str());
    return 1;
  }
  const spex::obs::MetricsSnapshot snapshot = registry.Collect();
  std::printf(
      "valid (%lld bytes, %lld events, %lld elements, max depth %lld)\n",
      static_cast<long long>(snapshot.Value("spex_parser_bytes_consumed")),
      static_cast<long long>(snapshot.Value("spex_parser_events")),
      static_cast<long long>(validator.elements_checked()),
      static_cast<long long>(snapshot.Value("spex_parser_max_depth")));
  return 0;
}
