// bench_compare — perf-regression gate over two BENCH_*.json files.
//
//   bench_compare [--threshold=0.25] [--report-only] BASELINE CANDIDATE
//
// Prints a per-workload throughput delta table (events_per_sec, matched on
// the (benchmark, observe) pair) and exits non-zero when any workload
// present in both files regressed by more than the threshold fraction.
// --report-only prints the same table but always exits 0 (the tier-1 smoke
// uses it: local runs are too noisy to gate on, CI machines gate for real).
//
// Accepted input shapes — records are collected from *anywhere* in the
// document, so all BENCH_PR*.json generations parse:
//   * a bare array of records (early --json runs),
//   * {"meta": {...}, "records": [...]} (current --json runs),
//   * {"note": ..., "observe_off": [...], "observe_full": [...]} (the
//     committed perf-trajectory files).
// A record is any object with "benchmark" and "events_per_sec"; a missing
// "observe" defaults to "off" (fig14_comparison records carry none).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (no dependencies; same shape as the one the
// tests use to round-trip exporter output).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            *out += "\\u";
            *out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Record extraction.

struct BenchRecord {
  std::string benchmark;
  std::string observe = "off";
  double events_per_sec = 0;
  double results = 0;
  bool has_results = false;
};

// Depth-first sweep collecting every object that looks like a benchmark
// record, wherever it sits in the document.
void CollectRecords(const JsonValue& v, std::vector<BenchRecord>* out) {
  if (v.kind == JsonValue::kObject) {
    const JsonValue* name = v.Get("benchmark");
    const JsonValue* rate = v.Get("events_per_sec");
    if (name != nullptr && name->kind == JsonValue::kString &&
        rate != nullptr && rate->kind == JsonValue::kNumber) {
      BenchRecord rec;
      rec.benchmark = name->str;
      rec.events_per_sec = rate->number;
      if (const JsonValue* obs = v.Get("observe");
          obs != nullptr && obs->kind == JsonValue::kString) {
        rec.observe = obs->str;
      }
      if (const JsonValue* res = v.Get("results");
          res != nullptr && res->kind == JsonValue::kNumber) {
        rec.results = res->number;
        rec.has_results = true;
      }
      out->push_back(std::move(rec));
      return;  // a record holds no nested records
    }
    for (const auto& [key, child] : v.object) CollectRecords(child, out);
  } else if (v.kind == JsonValue::kArray) {
    for (const JsonValue& child : v.array) CollectRecords(child, out);
  }
}

bool LoadRecords(const char* path, std::vector<BenchRecord>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonValue root;
  JsonReader reader(text);
  if (!reader.Parse(&root)) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n", path);
    return false;
  }
  CollectRecords(root, out);
  if (out->empty()) {
    std::fprintf(stderr, "bench_compare: no benchmark records in %s\n", path);
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=FRACTION] [--report-only] "
               "BASELINE.json CANDIDATE.json\n"
               "exits 1 when a workload's events_per_sec regressed by more "
               "than FRACTION (default 0.25)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.25;
  bool report_only = false;
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::atof(arg.c_str() + 12);
      if (threshold <= 0) return Usage();
    } else if (arg == "--report-only") {
      report_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage();
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) return Usage();

  std::vector<BenchRecord> baseline, candidate;
  if (!LoadRecords(baseline_path, &baseline) ||
      !LoadRecords(candidate_path, &candidate)) {
    return 2;
  }

  // Key both sides on (benchmark, observe); last record wins on duplicates.
  std::map<std::pair<std::string, std::string>, BenchRecord> base_by_key;
  for (BenchRecord& r : baseline) {
    base_by_key[{r.benchmark, r.observe}] = std::move(r);
  }

  std::printf("bench_compare: %s -> %s (fail below %.0f%% of baseline)\n",
              baseline_path, candidate_path, (1.0 - threshold) * 100.0);
  std::printf("  %-28s %-8s %14s %14s %8s\n", "benchmark", "observe",
              "base[ev/s]", "cand[ev/s]", "delta");
  int regressions = 0;
  int result_mismatches = 0;
  int compared = 0;
  for (const BenchRecord& cand : candidate) {
    auto it = base_by_key.find({cand.benchmark, cand.observe});
    if (it == base_by_key.end()) {
      std::printf("  %-28s %-8s %14s %14.0f      new\n",
                  cand.benchmark.c_str(), cand.observe.c_str(), "-",
                  cand.events_per_sec);
      continue;
    }
    const BenchRecord& base = it->second;
    ++compared;
    const double delta =
        base.events_per_sec > 0
            ? cand.events_per_sec / base.events_per_sec - 1.0
            : 0.0;
    const bool regressed = delta < -threshold;
    std::printf("  %-28s %-8s %14.0f %14.0f %+7.1f%%%s\n",
                cand.benchmark.c_str(), cand.observe.c_str(),
                base.events_per_sec, cand.events_per_sec, delta * 100.0,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
    if (base.has_results && cand.has_results && base.results != cand.results) {
      std::printf("    !! result count changed: %.0f -> %.0f\n", base.results,
                  cand.results);
      ++result_mismatches;
    }
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_compare: no common (benchmark, observe) pairs\n");
    return 2;
  }
  if (result_mismatches > 0) {
    std::printf("%d workload(s) changed result counts (correctness drift — "
                "investigate before trusting the timings)\n",
                result_mismatches);
  }
  if (regressions > 0) {
    std::printf("%d workload(s) regressed beyond %.0f%%%s\n", regressions,
                threshold * 100.0,
                report_only ? " (report-only: not failing)" : "");
    return report_only ? 0 : 1;
  }
  std::printf("no regressions beyond %.0f%%\n", threshold * 100.0);
  return 0;
}
