// spexquery — command-line streaming query processor.
//
//   spexquery QUERY [FILE]            evaluate an rpeq over FILE (or stdin)
//   spexquery --xpath QUERY [FILE]    the query is XPath instead of rpeq
//   spexquery --count ...             print only the number of results
//   spexquery --stats ...             print run statistics to stderr
//   spexquery --order=det ...         determination-order output (constant
//                                     memory on nested results)
//   spexquery --network ...           print the compiled network and exit
//   spexquery --dot ...               print the network as Graphviz DOT
//   spexquery --explain ...           print the static plan (one row per
//                                     transducer: query provenance span and
//                                     predicted cost class) and exit
//   spexquery --profile[=text|json|dot] ...
//                                     run the stream with the per-node cost
//                                     profiler and print the attribution
//                                     report (dot = heat-annotated network;
//                                     result fragments are suppressed, use
//                                     --count for the match count)
//   spexquery --sampling=N ...        statistical sampling profiler: ~1/N
//                                     delivery batches take the instrumented
//                                     path; prints the sampled attribution
//                                     report after the run (cheap alternative
//                                     to --profile for long streams)
//   spexquery --observe=LEVEL ...     off|counters|full (default: the
//                                     weakest level the other flags need)
//   spexquery --metrics=json|prom ... dump the metrics registry to stderr
//                                     after the run
//   spexquery --trace-out=FILE ...    write a Chrome trace-event JSON of the
//                                     run (implies --observe=full); load in
//                                     chrome://tracing or Perfetto
//   spexquery --progress[=N] ...      print a progress watermark to stderr
//                                     every N events (default 100000)
//   spexquery --max-depth=N ...       parser element-depth bound
//                                     (default 10000, 0 = unlimited)
//   spexquery --max-text=BYTES ...    parser token-size bound (text node /
//                                     tag name / attribute region; default
//                                     16 MiB, 0 = unlimited)
//
// Examples:
//   spexquery '_*.book[author].title' catalog.xml
//   spexquery --xpath '//country[province]/name' mondial.xml
//   generator | spexquery --count 'feed.tick[alert].price'
//   spexquery --count --metrics=prom --trace-out=run.json Q huge.xml

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/log.h"
#include "obs/sampling_profiler.h"
#include "spex/spex.h"

namespace {

using spex::obs::LogError;
using spex::obs::LogInfo;

struct Options {
  std::string query;
  std::string file;  // empty = stdin
  bool xpath = false;
  bool count_only = false;
  bool stats = false;
  bool show_network = false;
  bool dot = false;
  bool explain = false;
  std::string profile_format;  // "", "text", "json" or "dot"
  spex::OutputOrder order = spex::OutputOrder::kDocumentStart;
  spex::ObserveLevel observe = spex::ObserveLevel::kOff;
  bool observe_set = false;        // explicit --observe=...
  std::string metrics_format;      // "", "json" or "prom"
  std::string trace_out;           // empty = no trace
  int64_t progress_every = 0;      // 0 = no progress reports
  // Parser bounds (0 = unlimited); defaults absorb adversarial inputs
  // without bothering legitimate documents.
  int max_depth = 10000;
  size_t max_text_bytes = 16u << 20;
  // Events per delivery batch through parser and engine (DESIGN.md §11);
  // 1 = legacy per-event delivery.
  int batch_size = 64;
  // Sampling-profiler period: ~1/N batches instrumented (0 = off).
  int sampling_period = 0;
};

int Usage() {
  std::fprintf(stderr,
               "usage: spexquery [--xpath] [--count] [--stats] "
               "[--order=doc|det]\n"
               "                 [--network] [--dot] [--explain] "
               "[--profile[=text|json|dot]]\n"
               "                 [--observe=off|counters|full]\n"
               "                 [--metrics=json|prom] [--trace-out=FILE] "
               "[--progress[=N]]\n"
               "                 [--max-depth=N] [--max-text=BYTES] "
               "[--batch-size=N]\n"
               "                 [--sampling=N] QUERY [FILE]\n");
  return 2;
}

// Streams each result fragment to stdout as soon as it is complete.
class PrintingSink : public spex::ResultSink {
 public:
  void OnResultBegin(int64_t id) override { collector_.OnResultBegin(id); }
  void OnResultEvent(const spex::StreamEvent& e) override {
    collector_.OnResultEvent(e);
  }
  void OnReplayedResultEvent(int64_t id,
                             const spex::StreamEvent& e) override {
    collector_.OnReplayedResultEvent(id, e);
  }
  void OnResultEnd(int64_t id) override {
    collector_.OnResultEnd(id);
    // Fragments are final once their bracket closes; print new ones.
    while (printed_ < collector_.results().size()) {
      // Only print fragments that are complete (closed); under interleaved
      // emission a later-closing outer fragment may still be open.
      // SerializingResultSink fills results() in Begin order, so wait until
      // the next unprinted one is non-empty.
      if (collector_.results()[printed_].empty()) break;
      std::fputs(collector_.results()[printed_].c_str(), stdout);
      std::fputc('\n', stdout);
      ++printed_;
    }
  }
  size_t printed() const { return printed_; }
  const std::vector<std::string>& all() const { return collector_.results(); }

 private:
  spex::SerializingResultSink collector_;
  size_t printed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--xpath") {
      opts.xpath = true;
    } else if (arg == "--count") {
      opts.count_only = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--network") {
      opts.show_network = true;
    } else if (arg == "--dot") {
      opts.dot = true;
    } else if (arg == "--explain") {
      opts.explain = true;
    } else if (arg == "--profile") {
      opts.profile_format = "text";
    } else if (arg.rfind("--profile=", 0) == 0) {
      opts.profile_format = arg.substr(10);
      if (opts.profile_format != "text" && opts.profile_format != "json" &&
          opts.profile_format != "dot") {
        LogError("bad profile format", {{"arg", arg}});
        return Usage();
      }
    } else if (arg == "--order=det") {
      opts.order = spex::OutputOrder::kDetermination;
    } else if (arg == "--order=doc") {
      opts.order = spex::OutputOrder::kDocumentStart;
    } else if (arg.rfind("--observe=", 0) == 0) {
      if (!spex::ParseObserveLevel(arg.substr(10), &opts.observe)) {
        LogError("bad observe level", {{"arg", arg}});
        return Usage();
      }
      opts.observe_set = true;
    } else if (arg == "--metrics=json" || arg == "--metrics=prom") {
      opts.metrics_format = arg.substr(10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opts.trace_out = arg.substr(12);
      if (opts.trace_out.empty()) return Usage();
    } else if (arg == "--progress") {
      opts.progress_every = 100000;
    } else if (arg.rfind("--progress=", 0) == 0) {
      opts.progress_every = std::atoll(arg.c_str() + 11);
      if (opts.progress_every <= 0) return Usage();
    } else if (arg.rfind("--max-depth=", 0) == 0) {
      opts.max_depth = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--max-text=", 0) == 0) {
      opts.max_text_bytes = static_cast<size_t>(std::atoll(arg.c_str() + 11));
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      opts.batch_size = std::atoi(arg.c_str() + 13);
      if (opts.batch_size < 1) return Usage();
    } else if (arg.rfind("--sampling=", 0) == 0) {
      opts.sampling_period = std::atoi(arg.c_str() + 11);
      if (opts.sampling_period < 0) return Usage();
    } else if (arg.rfind("--", 0) == 0) {
      LogError("unknown option", {{"arg", arg}});
      return Usage();
    } else if (opts.query.empty()) {
      opts.query = arg;
    } else if (opts.file.empty()) {
      opts.file = arg;
    } else {
      return Usage();
    }
  }
  if (opts.query.empty()) return Usage();

  // Parse the query.
  spex::ParseResult parsed = opts.xpath ? spex::ParseXPath(opts.query)
                                        : spex::ParseRpeq(opts.query);
  if (!parsed.ok()) {
    LogError("query parse error",
             {{"offset", static_cast<long long>(parsed.error_position)},
              {"error", parsed.error}});
    return 1;
  }
  std::string validation_error;
  if (!spex::ValidateQuery(*parsed.expr, &validation_error)) {
    LogError("query validation error", {{"error", validation_error}});
    return 1;
  }

  spex::EngineOptions engine_options;
  engine_options.output_order = opts.order;
  engine_options.batch_size = opts.batch_size;
  // --trace-out needs full observation; --metrics/--progress only counters.
  // An explicit --observe wins (but tracing is unavailable below full).
  if (!opts.observe_set) {
    if (!opts.trace_out.empty()) {
      opts.observe = spex::ObserveLevel::kFull;
    } else if (!opts.metrics_format.empty() || opts.progress_every > 0) {
      opts.observe = spex::ObserveLevel::kCounters;
    }
  }
  if (!opts.trace_out.empty() && opts.observe != spex::ObserveLevel::kFull) {
    LogError("--trace-out requires --observe=full", {});
    return 2;
  }
  engine_options.observe = opts.observe;
  engine_options.profile = !opts.profile_format.empty();
  if (opts.progress_every > 0) {
    engine_options.progress.every_events = opts.progress_every;
    engine_options.progress.callback = [](const spex::Watermark& w) {
      LogInfo("progress", {{"watermark", w.ToString()}});
    };
  }

  if (opts.explain) {
    // Static plan: compile but do not run; the report carries provenance,
    // predicted cost classes and the network wiring, no timings.
    spex::CountingResultSink sink;
    spex::SpexEngine engine(*parsed.expr, &sink, engine_options);
    spex::obs::ProfileReport report = engine.Profile();
    report.query = opts.query;  // spans index the text as typed
    std::fputs(report.ToExplainText().c_str(), stdout);
    return 0;
  }

  if (opts.show_network || opts.dot) {
    spex::CountingResultSink sink;
    spex::SpexEngine engine(*parsed.expr, &sink, engine_options);
    if (opts.dot) {
      std::fputs(engine.network().ToDot().c_str(), stdout);
    } else {
      std::printf("query: %s\nnetwork (%d transducers):\n%s",
                  parsed.expr->ToString().c_str(),
                  engine.network().node_count(),
                  engine.network().Describe().c_str());
    }
    return 0;
  }

  // Evaluate, streaming the document through the engine.  A profile report
  // owns stdout (json/dot must stay machine-parseable), so fragments are
  // counted rather than printed.
  const bool suppress_results = !opts.profile_format.empty();
  spex::CountingResultSink counter;
  PrintingSink printer;
  spex::ResultSink* sink =
      opts.count_only || suppress_results
          ? static_cast<spex::ResultSink*>(&counter)
          : static_cast<spex::ResultSink*>(&printer);
  spex::SpexEngine engine(*parsed.expr, sink, engine_options);
  spex::obs::SamplingProfiler sampler(
      spex::obs::SamplingProfiler::Options{opts.sampling_period});
  if (opts.sampling_period > 0) engine.SetBatchSampler(&sampler);
  spex::XmlParserOptions parser_options;
  parser_options.symbols = engine.symbol_table();
  parser_options.metrics = &engine.metrics();
  parser_options.max_depth = opts.max_depth;
  parser_options.max_text_bytes = opts.max_text_bytes;
  parser_options.event_batch_size = opts.batch_size;
  spex::XmlParser parser(&engine, parser_options);
  engine.set_progress_bytes_source([&parser] { return parser.bytes_consumed(); });

  bool ok = true;
  if (opts.file.empty()) {
    std::string chunk(1 << 16, '\0');
    while (ok && std::cin.read(chunk.data(), chunk.size()),
           std::cin.gcount() > 0) {
      ok = parser.Feed(std::string_view(
          chunk.data(), static_cast<size_t>(std::cin.gcount())));
      if (!ok) break;
    }
    if (ok) ok = parser.Finish();
  } else {
    std::ifstream in(opts.file, std::ios::binary);
    if (!in) {
      LogError("cannot open input file", {{"file", opts.file}});
      return 1;
    }
    std::string chunk(1 << 16, '\0');
    while (ok && in.read(chunk.data(), chunk.size()), in.gcount() > 0) {
      ok = parser.Feed(
          std::string_view(chunk.data(), static_cast<size_t>(in.gcount())));
      if (!ok) break;
    }
    if (ok) ok = parser.Finish();
  }
  if (!ok) {
    LogError("XML parse error", {{"error", parser.error()}});
    return 1;
  }

  if (opts.count_only) {
    std::printf("%lld\n", static_cast<long long>(counter.results()));
  } else if (!suppress_results) {
    // Flush any fragments not yet printed (e.g. interleaved outer ones).
    for (size_t i = printer.printed(); i < printer.all().size(); ++i) {
      std::fputs(printer.all()[i].c_str(), stdout);
      std::fputc('\n', stdout);
    }
  }
  if (!opts.profile_format.empty()) {
    spex::obs::ProfileReport report = engine.Profile();
    report.query = opts.query;  // spans index the text as typed
    if (opts.profile_format == "json") {
      std::fputs(report.ToJson().c_str(), stdout);
    } else if (opts.profile_format == "dot") {
      std::fputs(engine.network().ToDot(&report).c_str(), stdout);
    } else {
      std::fputs(report.ToTable().c_str(), stdout);
    }
  }
  if (opts.sampling_period > 0) {
    // Sampled attribution: same report shape as --profile, estimated from
    // the ~1/N instrumented batches.
    spex::obs::ProfileReport report = engine.SampledProfile();
    report.query = opts.query;
    std::fprintf(stdout, "sampled batches: %lld (period %d)\n%s",
                 static_cast<long long>(engine.sampled_batches()),
                 opts.sampling_period, report.ToTable().c_str());
  }
  if (opts.stats) {
    std::fprintf(stderr, "%s\n", engine.ComputeStats().ToString().c_str());
  }
  if (!opts.metrics_format.empty()) {
    const spex::obs::MetricsSnapshot snapshot = engine.metrics().Collect();
    const std::string text = opts.metrics_format == "json"
                                 ? snapshot.ToJson()
                                 : snapshot.ToPrometheusText();
    std::fputs(text.c_str(), stderr);
  }
  if (!opts.trace_out.empty()) {
    const spex::obs::TraceRecorder* recorder = engine.trace_recorder();
    std::ofstream trace_file(opts.trace_out, std::ios::binary);
    if (!trace_file || recorder == nullptr) {
      LogError("cannot write trace file", {{"file", opts.trace_out}});
      return 1;
    }
    trace_file << recorder->ToChromeJson();
    if (!trace_file.flush()) {
      LogError("error writing trace file", {{"file", opts.trace_out}});
      return 1;
    }
  }
  return 0;
}
