// spexserve — concurrent multi-document query server (DESIGN.md §9).
//
//   spexserve --queries=FILE [--threads=N] DIR
//   generator | spexserve --queries=FILE [--threads=N] --frames
//
// Evaluates every query in FILE (rpeq syntax, one per line, '#' comments)
// against every document from the source, fanned out across an EnginePool:
// each (document, query) pair is one StreamSession pinned to a pool worker,
// compiled queries are shared through a CompiledQueryCache, and one parsed
// document fans out to all queries as a single shared event batch.
//
// Document sources:
//   DIR                 every regular file in the directory (sorted by name)
//   --frames[=FILE]     length-prefixed frame stream from FILE or stdin:
//                       each frame is a 4-byte little-endian uint32 payload
//                       length followed by that many bytes of XML
//
// Flags:
//   --threads=N         pool worker count (default 1)
//   --queue=N           per-worker queue bound, in batches (default 64)
//   --cache=N           compiled-query cache capacity (default 128)
//   --batch=N           split documents into batches of N events (default:
//                       one batch per document)
//   --print             print result fragments (default: counts only)
//   --metrics=json|prom dump the pool + cache metrics registry to stderr
//
// Telemetry plane (DESIGN.md §12):
//   --admin-port=P      serve /metrics, /metrics.json, /healthz, /sessions,
//                       /stats, /trace and /profile over HTTP on 127.0.0.1:P
//                       (0 = ephemeral; the bound port is logged as
//                       msg="admin plane listening" port=P).  After the
//                       input is drained the process keeps serving the
//                       admin plane until SIGTERM/SIGINT, then exits 0.
//   --log=text|json     structured log format on stderr (default text:
//                       logfmt `ts=... level=... msg="..." k=v`)
//   --log-level=LVL     debug|info|warn|error (default info)
//   --slow-ms=N         slow-query log: sessions whose feed-to-result time
//                       crosses N ms emit one structured msg="slow query"
//                       record (0 = off; runtime-mutable via
//                       /queries?slow_ms=N on the admin plane)
//   --slow-delay-ms=N   same, keyed on the estimated output-decision delay
//   --sampling=N        sampling profiler period: ~1/N delivery batches per
//                       session take the instrumented path and fold node
//                       self-times into /queries attribution (default 256,
//                       0 = off)
//
// Robustness (DESIGN.md §10):
//   --max-depth=N       parser element-depth bound (default 10000, 0 = off)
//   --max-text=BYTES    parser token-size bound (default 16 MiB, 0 = off)
//   --max-buffered-bytes=N, --max-formula-bytes=N, --max-events=N,
//   --deadline-ms=N     per-session EngineLimits (default 0 = off)
//   --chaos=SEED        deterministic fault injection: seeded corruption /
//                       truncation / tiny limits / worker stalls per
//                       session (see runtime/fault_injector.h)
//   --chaos-rate=PCT    fraction of sessions faulted under --chaos
//                       (default 50)
//
// A malformed or truncated document does NOT stop the server: its sessions
// are fed the parsed prefix and aborted with the parser's status, every
// other document keeps serving, and the affected sessions report a
// structured error line.
//
// Output: one line per (document, query) session, tab-separated:
//   <document>  <query>  <result count>                     (success)
//   <document>  <query>  ERROR(<code>)  certain=<n>/<m>  <message>
// in (document, query) submission order, plus structured summary log lines
// on stderr.  certain=n/m: of the m partial results harvested, the first n
// are exact (see SpexEngine::FinalizeTruncated).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/status.h"
#include "obs/log.h"
#include "runtime/admin_server.h"
#include "runtime/engine_pool.h"
#include "runtime/fault_injector.h"
#include "runtime/query_cache.h"
#include "xml/xml_parser.h"

namespace {

using spex::obs::LogError;
using spex::obs::LogInfo;
using spex::obs::LogWarn;

struct Options {
  std::string queries_file;
  std::string directory;    // document directory (exclusive with frames)
  bool frames = false;      // length-prefixed frame stream
  std::string frames_file;  // empty = stdin
  int threads = 1;
  size_t queue_capacity = 64;
  size_t cache_capacity = 128;
  size_t batch_events = 0;  // 0 = whole document in one batch
  // Events per delivery batch inside each session's engine (DESIGN.md §11);
  // 1 = legacy per-event delivery.  Distinct from --batch, which sizes the
  // pool's submission batches.
  int engine_batch = 64;
  bool print_results = false;
  std::string metrics_format;  // "", "json" or "prom"
  // Admin plane: serve HTTP telemetry on this port (-1 = disabled, 0 =
  // ephemeral) and linger after the input drains until SIGTERM/SIGINT.
  int admin_port = -1;
  // Slow-query thresholds (0 = off) and sampling-profiler period (0 = off).
  int64_t slow_ms = 0;
  int64_t slow_delay_ms = 0;
  int sampling_period = 256;
  // Parser bounds (0 = unlimited).  The defaults keep an adversarial
  // document from exhausting the parser while far exceeding anything a
  // legitimate stream carries.
  int max_depth = 10000;
  size_t max_text_bytes = 16u << 20;
  // Per-session engine limits (0 = off).
  spex::EngineLimits limits;
  // Deterministic chaos injection (--chaos=SEED).
  bool chaos = false;
  uint64_t chaos_seed = 0;
  int chaos_rate = 50;
};

int Usage() {
  std::fprintf(stderr,
               "usage: spexserve --queries=FILE [--threads=N] [--queue=N]\n"
               "                 [--cache=N] [--batch=N] [--batch-size=N] "
               "[--print]\n"
               "                 [--metrics=json|prom] [--admin-port=P]\n"
               "                 [--log=text|json] [--log-level=LVL]\n"
               "                 [--slow-ms=N] [--slow-delay-ms=N] "
               "[--sampling=N]\n"
               "                 [--max-depth=N] [--max-text=BYTES]\n"
               "                 [--max-buffered-bytes=N] [--max-formula-bytes=N]\n"
               "                 [--max-events=N] [--deadline-ms=N]\n"
               "                 [--chaos=SEED] [--chaos-rate=PCT]\n"
               "                 (DIR | --frames[=FILE])\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> LoadQueries(const std::string& path, bool* ok) {
  std::vector<std::string> queries;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const size_t end = line.find_last_not_of(" \t\r");
    queries.push_back(line.substr(begin, end - begin + 1));
  }
  return queries;
}

// Reads one length-prefixed frame; false on clean EOF, aborts the run (via
// *error) on a truncated frame.
bool ReadFrame(std::istream& in, std::string* payload, std::string* error) {
  payload->clear();  // never leave a previous frame's bytes behind
  unsigned char header[4];
  in.read(reinterpret_cast<char*>(header), 4);
  if (in.gcount() == 0 && in.eof()) return false;
  if (in.gcount() != 4) {
    *error = "truncated frame header";
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(header[0]) |
                          static_cast<uint32_t>(header[1]) << 8 |
                          static_cast<uint32_t>(header[2]) << 16 |
                          static_cast<uint32_t>(header[3]) << 24;
  payload->resize(length);
  in.read(payload->data(), static_cast<std::streamsize>(length));
  if (in.gcount() != static_cast<std::streamsize>(length)) {
    // Keep only what actually arrived: the caller evaluates the fragment
    // as a truncated document rather than zero-padded garbage.
    payload->resize(static_cast<size_t>(in.gcount()));
    *error = "truncated frame payload (wanted " + std::to_string(length) +
             " bytes, got " + std::to_string(payload->size()) + ")";
    return false;
  }
  return true;
}

struct PendingSession {
  std::string document;
  std::string query;
  std::shared_ptr<spex::StreamSession> session;  // null: rejected up front
  spex::Status rejected;  // non-OK when no session was opened
};

// Self-pipe shutdown handshake: the signal handler writes one byte, the
// linger loop in main() blocks on the read end.  Async-signal-safe.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
}

class Server {
 public:
  explicit Server(const Options& options)
      : options_(options),
        cache_(options.cache_capacity),
        injector_(options.chaos_seed, options.chaos_rate),
        pool_([&] {
          spex::PoolOptions pool_options;
          pool_options.threads = options.threads;
          pool_options.queue_capacity = options.queue_capacity;
          pool_options.engine.limits = options.limits;
          pool_options.engine.batch_size = options.engine_batch;
          pool_options.sampling_period = options.sampling_period;
          if (options.chaos) {
            // Seeded worker stalls: one deterministic draw per batch (the
            // corruption/truncation/limit faults are planned per session in
            // Dispatch; the stall schedule rides the batch counter).
            pool_options.before_batch =
                [this](int) {
                  const uint64_t n =
                      chaos_batches_.fetch_add(1, std::memory_order_relaxed);
                  spex::FaultInjector::MaybeStall(injector_.PlanForSession(n));
                };
          }
          return pool_options;
        }()) {
    cache_.RegisterCollectors(&pool_.metrics());
    spex::obs::Logger::Global().RegisterCollectors(&pool_.metrics());
    // Per-query observability is on regardless of the admin plane: the
    // slow-query log and flight dumps are structured log output, and the
    // registry is handed to the admin server (StartAdmin) so /queries and
    // /flight read the same aggregates.
    registry_.set_slow_ms(options.slow_ms);
    registry_.set_slow_delay_ms(options.slow_delay_ms);
    pool_.SetQueryRegistry(&registry_);
    if (options.chaos) {
      LogInfo("chaos injection on",
              {{"seed", static_cast<long long>(options.chaos_seed)},
               {"rate_pct", options.chaos_rate}});
    }
  }

  bool LoadQueries() {
    bool ok = false;
    queries_ = ::LoadQueries(options_.queries_file, &ok);
    if (!ok) {
      LogError("cannot read queries file", {{"file", options_.queries_file}});
      return false;
    }
    if (queries_.empty()) {
      LogError("no queries in file", {{"file", options_.queries_file}});
      return false;
    }
    // Fail fast on bad queries, before any document work.
    for (const std::string& q : queries_) {
      std::string error;
      if (cache_.Get(q, &error) == nullptr) {
        LogError("bad query", {{"query", q}, {"error", error}});
        return false;
      }
    }
    return true;
  }

  // Starts the telemetry plane before any documents are dispatched, so the
  // whole run is observable.  Fatal on socket failure: an operator who
  // asked for the admin plane should not silently run without it.
  bool StartAdmin(uint16_t port) {
    spex::AdminOptions admin_options;
    admin_options.http.port = port;
    admin_options.queries = &registry_;
    admin_ = std::make_unique<spex::AdminServer>(&pool_, admin_options);
    std::string error;
    if (!admin_->Start(&error)) {
      LogError("admin plane failed to start", {{"error", error}});
      return false;
    }
    LogInfo("admin plane listening",
            {{"port", static_cast<int>(admin_->port())},
             {"address", "127.0.0.1"}});
    return true;
  }

  void StopAdmin() {
    if (admin_ != nullptr) admin_->Stop();
  }

  // Parses one document and opens a session per query against it.  A
  // malformed/truncated document never stops the server: its sessions are
  // fed the parsed prefix and aborted with the parser's status, so Finish
  // reports a structured error line with the sealed partial result.
  void Dispatch(const std::string& name, const std::string& xml) {
    spex::FaultPlan plan;
    const std::string* doc = &xml;
    std::string mutated;
    if (options_.chaos) {
      plan = injector_.PlanForSession(chaos_sessions_++);
      if (plan.active()) {
        mutated = spex::FaultInjector::ApplyToDocument(plan, xml);
        doc = &mutated;
      }
    }
    spex::XmlParserOptions parser_options;
    parser_options.max_depth = options_.max_depth;
    parser_options.max_text_bytes = options_.max_text_bytes;
    std::vector<spex::StreamEvent> events;
    const spex::Status parse_status =
        spex::ParseXmlToEvents(*doc, &events, parser_options);
    if (!parse_status.ok()) {
      LogWarn("document parse failed, serving continues",
              {{"document", name},
               {"status", spex::StatusCodeName(parse_status.code())},
               {"error", parse_status.message()}});
    }
    ++documents_;
    document_events_ += static_cast<int64_t>(events.size());
    auto batch = std::make_shared<const std::vector<spex::StreamEvent>>(
        std::move(events));
    for (const std::string& q : queries_) {
      spex::StatusOr<std::shared_ptr<spex::StreamSession>> session =
          pool_.OpenSession(q, &cache_);
      if (!session.ok()) {
        // Unreachable for queries validated by LoadQueries; kept for
        // future per-request query sources.
        pending_.push_back(PendingSession{name, q, nullptr, session.status()});
        continue;
      }
      spex::EngineLimits limits = options_.limits;
      if (options_.chaos) {
        spex::FaultInjector::ApplyToLimits(plan, &limits);
        if (limits.enabled()) (*session)->OverrideLimits(limits);
      }
      if (admin_ != nullptr) {
        admin_->directory().Register(*session, limits);
      }
      if (options_.batch_events == 0) {
        (*session)->Feed(batch);
      } else {
        // Re-slice into bounded batches: exercises the queue/backpressure
        // path and bounds what one task pins in memory.
        for (size_t begin = 0; begin < batch->size();
             begin += options_.batch_events) {
          const size_t end =
              std::min(batch->size(), begin + options_.batch_events);
          (*session)->Feed(std::vector<spex::StreamEvent>(
              batch->begin() + static_cast<std::ptrdiff_t>(begin),
              batch->begin() + static_cast<std::ptrdiff_t>(end)));
        }
      }
      if (parse_status.ok()) {
        (*session)->Close();
      } else {
        (*session)->Abort(parse_status);
      }
      pending_.push_back(
          PendingSession{name, q, std::move(session).value(), {}});
    }
  }

  int Finish() {
    int64_t total_results = 0;
    int64_t failed_sessions = 0;
    for (PendingSession& p : pending_) {
      if (p.session == nullptr) {
        ++failed_sessions;
        std::printf("%s\t%s\tERROR(%s)\tcertain=0/0\t%s\n", p.document.c_str(),
                    p.query.c_str(), spex::StatusCodeName(p.rejected.code()),
                    p.rejected.message().c_str());
        continue;
      }
      const std::vector<std::string>& results = p.session->Wait();
      total_results += p.session->result_count();
      if (p.session->status().ok()) {
        std::printf("%s\t%s\t%lld\n", p.document.c_str(), p.query.c_str(),
                    static_cast<long long>(p.session->result_count()));
      } else {
        ++failed_sessions;
        std::printf("%s\t%s\tERROR(%s)\tcertain=%lld/%lld\t%s\n",
                    p.document.c_str(), p.query.c_str(),
                    spex::StatusCodeName(p.session->status().code()),
                    static_cast<long long>(p.session->certain_result_count()),
                    static_cast<long long>(p.session->result_count()),
                    p.session->status().message().c_str());
      }
      if (options_.print_results) {
        for (const std::string& r : results) std::printf("  %s\n", r.c_str());
      }
    }
    if (failed_sessions > 0) {
      LogWarn("sessions failed, see ERROR lines",
              {{"failed", static_cast<long long>(failed_sessions)}});
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const spex::obs::MetricsSnapshot snapshot = pool_.metrics().Collect();
    const int64_t pool_events = snapshot.Value("spex_pool_events_processed");
    LogInfo("run complete",
            {{"documents", static_cast<long long>(documents_)},
             {"queries", static_cast<long long>(queries_.size())},
             {"sessions", static_cast<long long>(pending_.size())},
             {"threads", pool_.threads()}});
    LogInfo("throughput",
            {{"document_events", static_cast<long long>(document_events_)},
             {"engine_events", static_cast<long long>(pool_events)},
             {"results", static_cast<long long>(total_results)},
             {"elapsed_sec", elapsed},
             {"events_per_sec",
              elapsed > 0 ? static_cast<double>(pool_events) / elapsed : 0.0}});
    LogInfo("latency",
            {{"feed_to_result_p50_us",
              snapshot.QuantileAll("spex_pool_feed_to_result_us", 0.50)},
             {"feed_to_result_p95_us",
              snapshot.QuantileAll("spex_pool_feed_to_result_us", 0.95)},
             {"feed_to_result_p99_us",
              snapshot.QuantileAll("spex_pool_feed_to_result_us", 0.99)},
             {"queue_wait_p50_us",
              snapshot.QuantileAll("spex_pool_queue_wait_us", 0.50)},
             {"queue_wait_p99_us",
              snapshot.QuantileAll("spex_pool_queue_wait_us", 0.99)}});
    if (options_.metrics_format == "json") {
      std::fprintf(stderr, "%s\n", snapshot.ToJson().c_str());
    } else if (options_.metrics_format == "prom") {
      std::fprintf(stderr, "%s", snapshot.ToPrometheusText().c_str());
    }
    return 0;
  }

 private:
  const Options& options_;
  spex::CompiledQueryCache cache_;
  spex::FaultInjector injector_;
  std::atomic<uint64_t> chaos_batches_{0};  // worker-stall schedule cursor
  uint64_t chaos_sessions_ = 0;             // document fault schedule cursor
  // Declared before pool_ so workers (which record runs into it during
  // teardown) are joined before the registry goes away.
  spex::QueryRegistry registry_;
  spex::EnginePool pool_;
  std::unique_ptr<spex::AdminServer> admin_;
  std::vector<std::string> queries_;
  std::vector<PendingSession> pending_;
  int64_t documents_ = 0;
  int64_t document_events_ = 0;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--queries=")) {
      options->queries_file = v;
    } else if (const char* v = value("--threads=")) {
      options->threads = std::atoi(v);
    } else if (const char* v = value("--queue=")) {
      options->queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--cache=")) {
      options->cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--batch-size=")) {
      options->engine_batch = std::atoi(v);
      if (options->engine_batch < 1) return false;
    } else if (const char* v = value("--batch=")) {
      options->batch_events = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--print") {
      options->print_results = true;
    } else if (const char* v = value("--admin-port=")) {
      options->admin_port = std::atoi(v);
      if (options->admin_port < 0 || options->admin_port > 65535) return false;
    } else if (const char* v = value("--slow-ms=")) {
      options->slow_ms = std::atoll(v);
    } else if (const char* v = value("--slow-delay-ms=")) {
      options->slow_delay_ms = std::atoll(v);
    } else if (const char* v = value("--sampling=")) {
      options->sampling_period = std::atoi(v);
      if (options->sampling_period < 0) return false;
    } else if (const char* v = value("--log=")) {
      spex::obs::LogFormat format;
      if (!spex::obs::ParseLogFormat(v, &format)) return false;
      spex::obs::Logger::Global().SetFormat(format);
    } else if (const char* v = value("--log-level=")) {
      spex::obs::LogLevel level;
      if (!spex::obs::ParseLogLevel(v, &level)) return false;
      spex::obs::Logger::Global().SetLevel(level);
    } else if (const char* v = value("--max-depth=")) {
      options->max_depth = std::atoi(v);
    } else if (const char* v = value("--max-text=")) {
      options->max_text_bytes = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--max-buffered-bytes=")) {
      options->limits.max_buffered_bytes = std::atoll(v);
    } else if (const char* v = value("--max-formula-bytes=")) {
      options->limits.max_formula_bytes = std::atoll(v);
    } else if (const char* v = value("--max-events=")) {
      options->limits.max_events = std::atoll(v);
    } else if (const char* v = value("--deadline-ms=")) {
      options->limits.deadline_ms = std::atoll(v);
    } else if (const char* v = value("--chaos=")) {
      options->chaos = true;
      options->chaos_seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--chaos-rate=")) {
      options->chaos_rate = std::atoi(v);
    } else if (const char* v = value("--metrics=")) {
      options->metrics_format = v;
      if (options->metrics_format != "json" &&
          options->metrics_format != "prom") {
        return false;
      }
    } else if (arg == "--frames") {
      options->frames = true;
    } else if (const char* v = value("--frames=")) {
      options->frames = true;
      options->frames_file = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (options->directory.empty()) {
      options->directory = arg;
    } else {
      return false;
    }
  }
  if (options->queries_file.empty()) return false;
  // Exactly one source: a directory, or the frame stream.
  if (options->frames != options->directory.empty()) return false;
  if (options->threads < 1) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return Usage();

  // Install the shutdown handshake before any serving starts so a SIGTERM
  // during the run already drains cleanly.
  if (options.admin_port >= 0) {
    if (pipe(g_shutdown_pipe) != 0) {
      LogError("cannot create shutdown pipe", {});
      return 1;
    }
    std::signal(SIGTERM, HandleShutdownSignal);
    std::signal(SIGINT, HandleShutdownSignal);
  }

  Server server(options);
  if (!server.LoadQueries()) return 1;
  if (options.admin_port >= 0 &&
      !server.StartAdmin(static_cast<uint16_t>(options.admin_port))) {
    return 1;
  }

  if (!options.directory.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(options.directory, ec)) {
      if (entry.is_regular_file()) paths.push_back(entry.path().string());
    }
    if (ec) {
      LogError("cannot read directory",
               {{"directory", options.directory}, {"error", ec.message()}});
      return 1;
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
      LogError("no files in directory", {{"directory", options.directory}});
      return 1;
    }
    for (const std::string& path : paths) {
      std::string xml;
      if (!ReadFile(path, &xml)) {
        LogError("cannot read document", {{"file", path}});
        return 1;
      }
      server.Dispatch(fs::path(path).filename().string(), xml);
    }
  } else {
    std::ifstream file;
    if (!options.frames_file.empty()) {
      file.open(options.frames_file, std::ios::binary);
      if (!file) {
        LogError("cannot read frames file", {{"file", options.frames_file}});
        return 1;
      }
    }
    std::istream& in = options.frames_file.empty() ? std::cin : file;
    std::string payload;
    std::string error;
    int64_t frame = 0;
    while (ReadFrame(in, &payload, &error)) {
      server.Dispatch("frame#" + std::to_string(frame++), payload);
    }
    if (!error.empty()) {
      // A truncated trailing frame is a client error, not a server fault:
      // evaluate its payload as-is (the parser will classify the damage),
      // report the condition, and still answer everything already queued.
      LogWarn("frame stream truncated, serving continues", {{"error", error}});
      if (!payload.empty()) {
        server.Dispatch("frame#" + std::to_string(frame) + "(truncated)",
                        payload);
      }
    }
  }
  const int rc = server.Finish();

  if (options.admin_port >= 0) {
    // Input drained, results printed; keep the telemetry plane up until the
    // operator says stop (this is what makes `spexserve --admin-port=P`
    // scrapeable by a Prometheus loop rather than a one-shot).
    LogInfo("serving admin plane until SIGTERM", {});
    char byte;
    while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    LogInfo("shutdown signal received, draining", {});
    server.StopAdmin();
  }
  return rc;
}
