// Shared helpers for the paper-reproduction benchmark binaries.

#ifndef SPEX_BENCH_BENCH_UTIL_H_
#define SPEX_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "spex/engine.h"
#include "xml/stream_event.h"

namespace spex::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Peak resident set size of the process so far, in MiB.
inline double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

// Estimated serialized size of an event stream in MB (what the paper's
// document sizes refer to).
inline double SerializedMb(const std::vector<StreamEvent>& events) {
  int64_t bytes = 0;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kStartElement:
        bytes += static_cast<int64_t>(e.name.size()) + 2;
        break;
      case EventKind::kEndElement:
        bytes += static_cast<int64_t>(e.name.size()) + 3;
        break;
      case EventKind::kText:
        bytes += static_cast<int64_t>(e.text.size());
        break;
      default:
        break;
    }
  }
  return static_cast<double>(bytes) / 1e6;
}

// Runs SPEX over a pre-materialized event stream; returns (seconds, result
// count).  Includes query compilation, as the paper's Fig. 14 timings do.
struct SpexRun {
  double seconds = 0;
  int64_t results = 0;
  RunStats stats;
};

inline SpexRun RunSpex(const Expr& query,
                       const std::vector<StreamEvent>& events) {
  Timer timer;
  CountingResultSink sink;
  SpexEngine engine(query, &sink);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  SpexRun run;
  run.seconds = timer.Seconds();
  run.results = sink.results();
  run.stats = engine.ComputeStats();
  return run;
}

// Simple fixed-width table printing.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Run metadata for machine-readable benchmark outputs (the BENCH_*.json
// perf-trajectory files): without a commit and build preset attached, a
// committed number cannot be attributed to a code state later.

// Short commit sha of the working tree, or "unknown" (no git, not a repo).
inline std::string GitShortSha() {
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) sha.assign(buf);
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

// Current UTC time, ISO-8601 (e.g. "2026-08-06T12:00:00Z").
inline std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

// Build preset the binary was compiled under (NDEBUG is what distinguishes
// Release/RelWithDebInfo from Debug here — benchmark numbers from an
// assert-enabled build are not comparable).
inline const char* BuildPreset() {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

// The "meta" object of a --json run: tool name, commit, date, preset, and
// the run's observe/profile mode.
inline std::string MetaJson(const std::string& tool,
                            const std::string& observe) {
  std::string out = "{";
  out += "\"tool\": \"" + tool + "\"";
  out += ", \"git_sha\": \"" + GitShortSha() + "\"";
  out += ", \"date\": \"" + UtcTimestamp() + "\"";
  out += ", \"preset\": \"" + std::string(BuildPreset()) + "\"";
  out += ", \"observe\": \"" + observe + "\"";
  out += "}";
  return out;
}

// Parses "--scale=<double>" and "--seed=<int>" style flags.
inline double FlagValue(int argc, char** argv, const std::string& name,
                        double fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stod(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

}  // namespace spex::bench

#endif  // SPEX_BENCH_BENCH_UTIL_H_
