// Shared helpers for the paper-reproduction benchmark binaries.

#ifndef SPEX_BENCH_BENCH_UTIL_H_
#define SPEX_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "spex/engine.h"
#include "xml/stream_event.h"

namespace spex::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Peak resident set size of the process so far, in MiB.
inline double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

// Estimated serialized size of an event stream in MB (what the paper's
// document sizes refer to).
inline double SerializedMb(const std::vector<StreamEvent>& events) {
  int64_t bytes = 0;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kStartElement:
        bytes += static_cast<int64_t>(e.name.size()) + 2;
        break;
      case EventKind::kEndElement:
        bytes += static_cast<int64_t>(e.name.size()) + 3;
        break;
      case EventKind::kText:
        bytes += static_cast<int64_t>(e.text.size());
        break;
      default:
        break;
    }
  }
  return static_cast<double>(bytes) / 1e6;
}

// Runs SPEX over a pre-materialized event stream; returns (seconds, result
// count).  Includes query compilation, as the paper's Fig. 14 timings do.
struct SpexRun {
  double seconds = 0;
  int64_t results = 0;
  RunStats stats;
};

inline SpexRun RunSpex(const Expr& query,
                       const std::vector<StreamEvent>& events) {
  Timer timer;
  CountingResultSink sink;
  SpexEngine engine(query, &sink);
  for (const StreamEvent& e : events) engine.OnEvent(e);
  SpexRun run;
  run.seconds = timer.Seconds();
  run.results = sink.results();
  run.stats = engine.ComputeStats();
  return run;
}

// Simple fixed-width table printing.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Parses "--scale=<double>" and "--seed=<int>" style flags.
inline double FlagValue(int argc, char** argv, const std::string& name,
                        double fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stod(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

}  // namespace spex::bench

#endif  // SPEX_BENCH_BENCH_UTIL_H_
