// Ablation E5 — §V space bounds: transducer stacks are bounded by the
// stream depth d (S_CH = S_CL = O(d * sigma)), while the stream *size* does
// not matter.  Two sweeps:
//   (a) fixed size, growing depth  -> stack peaks grow linearly with d
//   (b) fixed depth, growing size  -> stack peaks stay flat

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "xml/generators.h"

namespace spex {
namespace {

RunStats Run(const std::string& query, const std::vector<StreamEvent>& ev) {
  ExprPtr q = MustParseRpeq(query);
  return bench::RunSpex(*q, ev).stats;
}

void DepthSweep(const std::string& query) {
  std::printf("\nquery %s, document = chain of depth d\n", query.c_str());
  std::printf("%8s %14s %14s %16s\n", "depth d", "depth_stack", "cond_stack",
              "formula_nodes");
  bench::PrintRule(56);
  for (int d = 16; d <= 1024; d *= 2) {
    std::vector<StreamEvent> ev = GenerateToVector(
        [&](EventSink* s) { GenerateDeepChain(d, {"a", "b"}, s); });
    RunStats stats = Run(query, ev);
    std::printf("%8d %14lld %14lld %16lld\n", d,
                static_cast<long long>(stats.max_depth_stack),
                static_cast<long long>(stats.max_condition_stack),
                static_cast<long long>(stats.max_formula_nodes));
  }
}

void SizeSweep(const std::string& query) {
  std::printf("\nquery %s, flat document of n records (depth fixed at 3)\n",
              query.c_str());
  std::printf("%10s %14s %14s %16s\n", "records", "depth_stack", "cond_stack",
              "buffered_pk");
  bench::PrintRule(58);
  for (int64_t n = 1000; n <= 64000; n *= 4) {
    std::vector<StreamEvent> ev = GenerateToVector([&](EventSink* s) {
      s->OnEvent(StreamEvent::StartDocument());
      s->OnEvent(StreamEvent::StartElement("r"));
      for (int64_t i = 0; i < n; ++i) {
        s->OnEvent(StreamEvent::StartElement("item"));
        if (i % 3 == 0) {
          s->OnEvent(StreamEvent::StartElement("flag"));
          s->OnEvent(StreamEvent::EndElement("flag"));
        }
        s->OnEvent(StreamEvent::StartElement("v"));
        s->OnEvent(StreamEvent::EndElement("v"));
        s->OnEvent(StreamEvent::EndElement("item"));
      }
      s->OnEvent(StreamEvent::EndElement("r"));
      s->OnEvent(StreamEvent::EndDocument());
    });
    RunStats stats = Run(query, ev);
    std::printf("%10lld %14lld %14lld %16lld\n", static_cast<long long>(n),
                static_cast<long long>(stats.max_depth_stack),
                static_cast<long long>(stats.max_condition_stack),
                static_cast<long long>(stats.output.buffered_events_peak));
  }
}

}  // namespace
}  // namespace spex

int main() {
  using namespace spex;
  std::printf("== Ablation E5: memory vs stream depth (Thm. V.1) ==\n");
  std::printf("Expected shape: stack peaks ~ d in the depth sweep, flat in "
              "the size sweep.\n");
  DepthSweep("_*.a");
  DepthSweep("_*.a[b]");
  SizeSweep("r.item[flag].v");
  return 0;
}
