// Ablation E4 — Lemma V.1: the translation of an rpeq of length n into a
// SPEX network takes time linear in n, and the network degree is linear in
// n.  Sweeps query length for three query shapes and reports compile time
// and degree; the time/step and degree/step columns should be flat.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "spex/compiler.h"

namespace spex {
namespace {

std::string ChainQuery(int steps) {
  std::string q = "a0";
  for (int i = 1; i < steps; ++i) q += ".a" + std::to_string(i % 7);
  return q;
}

std::string QualifierQuery(int steps) {
  std::string q = "_*";
  for (int i = 0; i < steps; ++i) q += ".s" + std::to_string(i % 5) + "[t]";
  return q;
}

std::string UnionQuery(int steps) {
  std::string q = "a0";
  for (int i = 1; i < steps; ++i) q += "|a" + std::to_string(i % 7);
  return q;
}

void Sweep(const char* name, std::string (*make)(int)) {
  std::printf("\n%s\n", name);
  std::printf("%8s %10s %12s %14s %14s\n", "steps", "degree", "degree/step",
              "compile[us]", "us/step");
  bench::PrintRule(64);
  for (int steps = 8; steps <= 512; steps *= 2) {
    std::string text = make(steps);
    ExprPtr query = MustParseRpeq(text);
    // Compile repeatedly for a stable measurement.
    const int reps = 50;
    bench::Timer timer;
    int degree = 0;
    for (int r = 0; r < reps; ++r) {
      RunContext context;
      CountingResultSink sink;
      CompiledNetwork net = CompileToNetwork(*query, &sink, &context);
      degree = net.network.node_count();
    }
    double us = timer.Seconds() * 1e6 / reps;
    std::printf("%8d %10d %12.2f %14.1f %14.3f\n", steps, degree,
                static_cast<double>(degree) / steps, us, us / steps);
  }
}

}  // namespace
}  // namespace spex

int main() {
  using namespace spex;
  std::printf("== Ablation E4: translation linearity (Lemma V.1) ==\n");
  std::printf("Expected shape: degree/step and us/step flat as steps grow.\n");
  Sweep("child-step chain a0.a1...", ChainQuery);
  Sweep("qualifier chain _*.s0[t].s1[t]...", QualifierQuery);
  Sweep("union a0|a1|...", UnionQuery);
  return 0;
}
