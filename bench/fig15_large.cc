// Reproduces Fig. 15: "Query processing for large and very large-size
// documents using SPEX networks".
//
// The paper runs the four query classes on the DMOZ structure dump (300 MB,
// 3,940,716 elements, depth 3) and content dump (1 GB, 13,233,278 elements,
// depth 3).  Saxon and Fxgrep cannot process these (out of memory on the
// 512 MB machine); SPEX does, with constant memory (8.5–11 MB including the
// JVM).  We stream generated DMOZ-like documents directly into the engine —
// nothing is ever materialized — and report throughput plus the engine's
// peak buffering, demonstrating the same constant-memory behaviour.
//
// Default --scale=0.1 keeps the whole suite fast (~400k / ~1.3M elements);
// use --scale=1.0 for paper-sized runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "xml/generators.h"

namespace spex {
namespace {

struct StreamedRun {
  double seconds = 0;
  int64_t results = 0;
  GeneratorStats gen;
  RunStats stats;
};

// Streams the generator straight into the engine: memory stays flat no
// matter how large the document is.  Uses the determination-order output
// policy, which is what gives the paper its constant memory on class 3
// (nested results): under strict document-start order the outermost result
// of `_*._` — the root — would force buffering the entire stream.
StreamedRun RunStreamed(const Expr& query, uint64_t seed, double scale,
                        bool content, OutputOrder order) {
  bench::Timer timer;
  CountingResultSink sink;
  EngineOptions options;
  options.output_order = order;
  SpexEngine engine(query, &sink, options);
  StreamedRun run;
  run.gen = GenerateDmozLike(seed, scale, content, &engine);
  run.seconds = timer.Seconds();
  run.results = sink.results();
  run.stats = engine.ComputeStats();
  return run;
}

void RunVariant(const char* name, bool content, uint64_t seed, double scale) {
  const std::vector<std::pair<int, std::string>> queries = {
      {1, "_*.Topic.Title"},
      {2, "_*.Topic[editor].Title"},
      {3, "_*._"},
      {4, "_*.Topic[editor].newsGroup"},
  };
  std::printf("\nDMOZ-like %s (scale %.2f)\n", name, scale);
  std::printf("%-4s %-32s %10s %14s %10s %12s %9s\n", "cls", "query",
              "time[s]", "events/s", "results", "buffered_pk", "rss[MB]");
  bench::PrintRule(98);
  for (const auto& [cls, q] : queries) {
    ExprPtr query = MustParseRpeq(q);
    StreamedRun run = RunStreamed(*query, seed, scale, content,
                                  OutputOrder::kDetermination);
    std::printf("%-4d %-32s %10.3f %14.0f %10lld %12lld %9.1f\n", cls,
                q.c_str(), run.seconds,
                static_cast<double>(run.gen.events) / run.seconds,
                static_cast<long long>(run.results),
                static_cast<long long>(run.stats.output.buffered_events_peak),
                bench::PeakRssMb());
  }
  // Document shape summary from the last run's generator (deterministic).
  RecordingEventSink probe;  // tiny probe for the shape line
  GeneratorStats small = GenerateDmozLike(seed, 0.001, content, &probe);
  std::printf("(at scale 1.0: ~%lld elements, depth %d; paper: %s)\n",
              static_cast<long long>(small.elements * 1000),
              small.max_depth,
              content ? "13,233,278 elements / 1 GB"
                      : "3,940,716 elements / 300 MB");
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) {
  using namespace spex;
  double scale = bench::FlagValue(argc, argv, "scale", 0.1);
  uint64_t seed =
      static_cast<uint64_t>(bench::FlagValue(argc, argv, "seed", 42));

  std::printf("== Fig. 15 reproduction: large documents, SPEX only ==\n");
  std::printf("Documents are streamed straight from the generator into the "
              "network;\nthe in-memory baselines are excluded by "
              "construction (the paper's Saxon/Fxgrep\nran out of memory "
              "here).  Watch the flat 'buffered_pk' and 'rss' columns —\n"
              "the paper reports a constant 8.5-11 MB for SPEX.\n");

  RunVariant("structure", /*content=*/false, seed, scale);
  RunVariant("content", /*content=*/true, seed, scale);

  // Contrast: the strict document-start output policy on nested results
  // must buffer everything behind the root fragment (worst case of §V).
  {
    ExprPtr q = MustParseRpeq("_*._");
    StreamedRun det = RunStreamed(*q, seed, scale * 0.2, false,
                                  OutputOrder::kDetermination);
    StreamedRun strict = RunStreamed(*q, seed, scale * 0.2, false,
                                     OutputOrder::kDocumentStart);
    std::printf("\noutput-policy contrast on _*._ (structure, scale %.2f):\n"
                "  determination order : buffered_peak = %lld events\n"
                "  document-start order: buffered_peak = %lld events "
                "(~ whole stream)\n",
                scale * 0.2,
                static_cast<long long>(
                    det.stats.output.buffered_events_peak),
                static_cast<long long>(
                    strict.stats.output.buffered_events_peak));
  }

  std::printf("\nPaper reference (Fig. 15): structure 300MB: 131-260s; "
              "content 1GB: 476-725s\n(on a 1 GHz Pentium III under a JVM); "
              "class 3 is the most expensive in both.\n");
  return 0;
}
