// Ablation E6 — §V time bound: evaluation time is linear in the stream size
// s for a fixed query (T = O(sigma * s)).  Sweeps the document size for the
// four §VI query classes and reports time per million events, which should
// stay flat.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "xml/generators.h"

namespace spex {
namespace {

void Sweep(const std::string& query) {
  std::printf("\nquery %s\n", query.c_str());
  std::printf("%12s %12s %10s %16s\n", "elements", "events", "time[s]",
              "s/1M events");
  bench::PrintRule(54);
  ExprPtr q = MustParseRpeq(query);
  for (double scale = 0.02; scale <= 0.32; scale *= 2) {
    bench::Timer timer;
    CountingResultSink sink;
    SpexEngine engine(*q, &sink);
    GeneratorStats gen = GenerateDmozLike(7, scale, /*content=*/false,
                                          &engine);
    double s = timer.Seconds();
    std::printf("%12lld %12lld %10.3f %16.3f\n",
                static_cast<long long>(gen.elements),
                static_cast<long long>(gen.events), s,
                s * 1e6 / static_cast<double>(gen.events));
  }
}

}  // namespace
}  // namespace spex

int main() {
  using namespace spex;
  std::printf("== Ablation E6: time vs stream size (Thm. V.1) ==\n");
  std::printf("Expected shape: the s/1M-events column is flat for each "
              "query.\n");
  Sweep("_*.Topic.Title");                 // class 1
  Sweep("_*.Topic[editor].Title");         // class 2
  Sweep("_*._");                           // class 3
  Sweep("_*.Topic[editor].newsGroup");     // class 4
  return 0;
}
