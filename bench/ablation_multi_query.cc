// Ablation E8b — multi-query sharing (§IX outlook / §VIII YFilter
// discussion): evaluating N subscriber profiles through one shared network
// vs. N separate engines.  Reports network degree and throughput; profiles
// share the `_*.item[...]` prefix, so the shared degree grows much slower
// than N and the per-event work drops accordingly.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "spex/multi_query.h"
#include "xml/generators.h"

namespace spex {
namespace {

// Synthesizes N profiles over a small vocabulary; ~all share the
// "_*.item" prefix and many share longer prefixes.
std::vector<std::string> MakeProfiles(int n) {
  static const char* kSections[] = {"markets", "tech", "sport", "politics"};
  static const char* kFields[] = {"headline", "body", "author", "date"};
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    std::string q = "_*.item";
    if (i % 3 == 1) q += "[" + std::string(kSections[i % 4]) + "]";
    if (i % 3 == 2) q += "[urgent]";
    q += "." + std::string(kFields[(i / 3) % 4]);
    out.push_back(q);
  }
  return out;
}

std::vector<StreamEvent> MakeFeed(int64_t items) {
  RecordingEventSink sink;
  sink.OnEvent(StreamEvent::StartDocument());
  sink.OnEvent(StreamEvent::StartElement("feed"));
  for (int64_t i = 0; i < items; ++i) {
    sink.OnEvent(StreamEvent::StartElement("item"));
    if (i % 2 == 0) {
      sink.OnEvent(StreamEvent::StartElement("markets"));
      sink.OnEvent(StreamEvent::EndElement("markets"));
    }
    if (i % 5 == 0) {
      sink.OnEvent(StreamEvent::StartElement("urgent"));
      sink.OnEvent(StreamEvent::EndElement("urgent"));
    }
    for (const char* f : {"headline", "body", "author"}) {
      sink.OnEvent(StreamEvent::StartElement(f));
      sink.OnEvent(StreamEvent::Text("x"));
      sink.OnEvent(StreamEvent::EndElement(f));
    }
    sink.OnEvent(StreamEvent::EndElement("item"));
  }
  sink.OnEvent(StreamEvent::EndElement("feed"));
  sink.OnEvent(StreamEvent::EndDocument());
  return sink.events();
}

}  // namespace
}  // namespace spex

int main() {
  using namespace spex;
  std::printf("== Ablation E8b: multi-query prefix sharing (§IX) ==\n");
  std::printf("N profiles over one stream: shared network vs N separate "
              "engines.\n\n");
  std::vector<StreamEvent> feed = MakeFeed(2000);
  std::printf("%6s %13s %12s %12s %12s %10s\n", "N", "naive_deg",
              "shared_deg", "separate[s]", "shared[s]", "speedup");
  bench::PrintRule(72);
  for (int n = 4; n <= 256; n *= 2) {
    std::vector<std::string> profiles = MakeProfiles(n);

    // Separate engines.
    double separate_s;
    std::vector<int64_t> separate_counts;
    {
      std::vector<std::unique_ptr<CountingResultSink>> sinks;
      std::vector<ExprPtr> queries;
      std::vector<std::unique_ptr<SpexEngine>> engines;
      for (const std::string& p : profiles) {
        queries.push_back(MustParseRpeq(p));
        sinks.push_back(std::make_unique<CountingResultSink>());
        engines.push_back(
            std::make_unique<SpexEngine>(*queries.back(), sinks.back().get()));
      }
      bench::Timer timer;
      for (const StreamEvent& e : feed) {
        for (auto& engine : engines) engine->OnEvent(e);
      }
      separate_s = timer.Seconds();
      for (auto& s : sinks) separate_counts.push_back(s->results());
    }

    // One shared network.
    double shared_s;
    int naive_deg, shared_deg;
    {
      std::vector<std::unique_ptr<CountingResultSink>> sinks;
      MultiQueryEngine mq;
      for (const std::string& p : profiles) {
        sinks.push_back(std::make_unique<CountingResultSink>());
        mq.AddQuery(p, sinks.back().get());
      }
      mq.Finalize();
      naive_deg = mq.naive_degree();
      shared_deg = mq.shared_degree();
      bench::Timer timer;
      for (const StreamEvent& e : feed) mq.OnEvent(e);
      shared_s = timer.Seconds();
      for (int i = 0; i < n; ++i) {
        if (mq.result_count(i) != separate_counts[static_cast<size_t>(i)]) {
          std::printf("  !! result mismatch for profile %d\n", i);
        }
      }
    }
    std::printf("%6d %13d %12d %12.3f %12.3f %9.2fx\n", n, naive_deg,
                shared_deg, separate_s, shared_s, separate_s / shared_s);
  }
  std::printf("\nExpected shape: shared_deg << naive_deg once profiles "
              "overlap, and the\nshared network processes the stream "
              "several times faster at high N.\n");
  return 0;
}
