// Multi-document throughput scaling over the concurrent runtime (PR 4).
//
// Fans a fleet of DMOZ-like documents x a small query set across an
// EnginePool at 1/2/4/8 worker threads (one StreamSession per (document,
// query) pair, compiled queries shared through a CompiledQueryCache) and
// reports aggregate engine events per second per thread count, plus a
// pool-free single-engine baseline so the pool's dispatch overhead is
// visible at threads=1.
//
//   throughput_scaling [--scale=S] [--docs=N] [--json PATH]
//
// --scale scales each document (DMOZ generator scale, default 0.04);
// --docs sets the fleet size (default 8).  With --json the run appends the
// perf-trajectory records {benchmark: "scaling_dmoz_t<N>", events_per_sec,
// ...} consumed by tools/bench_compare and committed as BENCH_PR<n>.json.
//
// Scaling expectation: sessions are independent (no shared mutable state
// outside the queue handoff and the read-mostly cache), so aggregate ev/s
// grows near-linearly in the worker count up to the machine's core count
// and flattens beyond it.  On a single-core container every thread count
// measures the same serial throughput minus scheduling noise — the
// committed numbers must be read together with the core count of the
// machine that produced them.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "runtime/engine_pool.h"
#include "runtime/query_cache.h"
#include "xml/generators.h"

namespace spex {
namespace {

const char* const kQueries[] = {
    "_*.Topic[link].Title",
    "RDF.Topic[editor]",
    "_*.(Title|Description)",
};

struct ScalingResult {
  std::string name;
  double seconds = 0;
  int64_t engine_events = 0;  // events fed through engines, all sessions
  int64_t results = 0;
  double events_per_sec = 0;
};

using Batch = std::shared_ptr<const std::vector<StreamEvent>>;

// One full fan-out: every document against every query on `threads`
// workers.  Returns aggregate throughput over engine events (documents x
// queries x events), the unit that scales with the worker count.
ScalingResult RunPooled(const std::vector<Batch>& docs,
                        const std::vector<ExprPtr>& queries, int threads) {
  ScalingResult out;
  out.name = "scaling_dmoz_t" + std::to_string(threads);
  CompiledQueryCache cache(16);
  std::string error;
  std::vector<std::shared_ptr<const QueryTemplate>> templates;
  for (const ExprPtr& q : queries) {
    templates.push_back(cache.GetFor(*q, &error));
    if (templates.back() == nullptr) {
      std::fprintf(stderr, "bad query: %s\n", error.c_str());
      std::exit(1);
    }
  }
  PoolOptions options;
  options.threads = threads;
  options.queue_capacity = 8;
  bench::Timer timer;
  EnginePool pool(options);
  std::vector<std::shared_ptr<StreamSession>> sessions;
  sessions.reserve(docs.size() * templates.size());
  for (const Batch& doc : docs) {
    for (const auto& t : templates) {
      auto session = pool.OpenSession(t);
      session->Feed(doc);
      session->Close();
      sessions.push_back(std::move(session));
    }
  }
  for (auto& session : sessions) {
    session->Wait();
    out.results += session->result_count();
    out.engine_events += session->stats().events_processed;
  }
  out.seconds = timer.Seconds();
  out.events_per_sec = static_cast<double>(out.engine_events) / out.seconds;
  return out;
}

// Pool-free baseline: the same sessions run serially on the caller thread,
// with the same serializing sink the pool sessions use, so the delta to
// scaling_dmoz_t1 is purely the pool's dispatch overhead.
ScalingResult RunSingleEngine(const std::vector<Batch>& docs,
                              const std::vector<ExprPtr>& queries) {
  ScalingResult out;
  out.name = "scaling_single_engine";
  bench::Timer timer;
  for (const Batch& doc : docs) {
    for (const ExprPtr& q : queries) {
      SerializingResultSink sink;
      SpexEngine engine(*q, &sink);
      for (const StreamEvent& e : *doc) engine.OnEvent(e);
      out.results += static_cast<int64_t>(sink.results().size());
      out.engine_events += static_cast<int64_t>(doc->size());
    }
  }
  out.seconds = timer.Seconds();
  out.events_per_sec = static_cast<double>(out.engine_events) / out.seconds;
  return out;
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) {
  using namespace spex;
  const double scale = bench::FlagValue(argc, argv, "scale", 0.04);
  const int doc_count =
      static_cast<int>(bench::FlagValue(argc, argv, "docs", 8));
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<Batch> docs;
  int64_t doc_events = 0;
  for (int d = 0; d < doc_count; ++d) {
    auto events = GenerateToVector([&](EventSink* sink) {
      GenerateDmozLike(static_cast<uint64_t>(1000 + d), scale,
                       /*content=*/true, sink);
    });
    doc_events += static_cast<int64_t>(events.size());
    docs.push_back(
        std::make_shared<const std::vector<StreamEvent>>(std::move(events)));
  }
  std::vector<ExprPtr> queries;
  for (const char* q : kQueries) queries.push_back(MustParseRpeq(q));

  std::fprintf(stderr,
               "%d documents (%lld events total) x %zu queries, "
               "hardware_concurrency=%u\n",
               doc_count, static_cast<long long>(doc_events),
               queries.size(), std::thread::hardware_concurrency());

  std::vector<ScalingResult> results;
  results.push_back(RunSingleEngine(docs, queries));
  for (int threads : {1, 2, 4, 8}) {
    results.push_back(RunPooled(docs, queries, threads));
  }
  // Sanity: every configuration must produce identical result counts.
  for (const ScalingResult& r : results) {
    if (r.results != results.front().results ||
        r.engine_events != results.front().engine_events) {
      std::fprintf(stderr, "FATAL: %s diverged (%lld results, %lld events)\n",
                   r.name.c_str(), static_cast<long long>(r.results),
                   static_cast<long long>(r.engine_events));
      return 1;
    }
  }
  const double base = results[1].events_per_sec;  // pooled, 1 thread
  for (const ScalingResult& r : results) {
    std::fprintf(stderr, "%-24s %10.3fs %12.0f ev/s  x%.2f  (%lld results)\n",
                 r.name.c_str(), r.seconds, r.events_per_sec,
                 r.events_per_sec / base,
                 static_cast<long long>(r.results));
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"meta\": %s,\n  \"records\": [\n",
                 bench::MetaJson("throughput_scaling", "off").c_str());
    for (size_t i = 0; i < results.size(); ++i) {
      const ScalingResult& r = results[i];
      std::fprintf(f,
                   "%s  {\"benchmark\": \"%s\", \"observe\": \"off\", "
                   "\"events_per_sec\": %.1f, \"results\": %lld}",
                   i == 0 ? "" : ",\n", r.name.c_str(), r.events_per_sec,
                   static_cast<long long>(r.results));
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
  }
  return 0;
}
