// Ablation E7 — §V formula-size analysis: with qualifiers on n wildcard
// closure steps, an expanded (DNF) formula can reach size O(d^n), while the
// shared-DAG ("factored", Remark V.1) representation used by this library
// stays polynomial.  Sweeps n and d on nested documents and reports the
// peak DAG node count against the DNF-expanded literal count of the same
// formulas, plus the run time of eager vs lazy formula updating.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpeq/parser.h"
#include "xml/generators.h"

namespace spex {
namespace {

// _+[q1]._+[q2]...: each step is a wildcard closure with a qualifier —
// the worst case of §V.
std::string WorstCaseQuery(int n) {
  std::string q = "_+[x0]";
  for (int i = 1; i < n; ++i) q += "._+[x" + std::to_string(i % 3) + "]";
  return q;
}

// A document of nested <a> elements with occasional qualifier witnesses.
std::vector<StreamEvent> NestedDoc(int depth) {
  return GenerateToVector([&](EventSink* s) {
    s->OnEvent(StreamEvent::StartDocument());
    for (int i = 0; i < depth; ++i) {
      s->OnEvent(StreamEvent::StartElement("a"));
      if (i % 3 == 0) {
        s->OnEvent(StreamEvent::StartElement("x0"));
        s->OnEvent(StreamEvent::EndElement("x0"));
      }
    }
    for (int i = depth - 1; i >= 0; --i) {
      s->OnEvent(StreamEvent::EndElement("a"));
    }
    s->OnEvent(StreamEvent::EndDocument());
  });
}

void SweepQualifierCount() {
  std::printf("\nformula size vs number of closure+qualifier steps n "
              "(depth fixed at 48)\n");
  std::printf("%4s %16s %18s %12s\n", "n", "DAG nodes (peak)",
              "cond stack (peak)", "time[ms]");
  bench::PrintRule(56);
  std::vector<StreamEvent> doc = NestedDoc(48);
  for (int n = 1; n <= 4; ++n) {
    ExprPtr q = MustParseRpeq(WorstCaseQuery(n));
    bench::Timer timer;
    bench::SpexRun run = bench::RunSpex(*q, doc);
    std::printf("%4d %16lld %18lld %12.2f\n", n,
                static_cast<long long>(run.stats.max_formula_nodes),
                static_cast<long long>(run.stats.max_condition_stack),
                run.seconds * 1e3);
  }
}

void SweepDepth() {
  std::printf("\nformula size vs document depth d (n = 2 qualifier "
              "closure steps)\n");
  std::printf("%6s %16s %12s\n", "d", "DAG nodes (peak)", "time[ms]");
  bench::PrintRule(40);
  ExprPtr q = MustParseRpeq(WorstCaseQuery(2));
  for (int d = 16; d <= 256; d *= 2) {
    std::vector<StreamEvent> doc = NestedDoc(d);
    bench::SpexRun run = bench::RunSpex(*q, doc);
    std::printf("%6d %16lld %12.2f\n", d,
                static_cast<long long>(run.stats.max_formula_nodes),
                run.seconds * 1e3);
  }
}

void EagerVsLazy() {
  std::printf("\neager vs lazy formula updating (update(c,v,beta) at every "
              "transducer\nvs evaluation at OU only); query %s, depth 128\n",
              WorstCaseQuery(2).c_str());
  std::printf("%8s %12s %16s\n", "mode", "time[ms]", "assignment size");
  bench::PrintRule(40);
  std::vector<StreamEvent> doc = NestedDoc(128);
  ExprPtr q = MustParseRpeq(WorstCaseQuery(2));
  for (bool eager : {true, false}) {
    EngineOptions options;
    options.eager_formula_update = eager;
    bench::Timer timer;
    CountingResultSink sink;
    SpexEngine engine(*q, &sink, options);
    for (const StreamEvent& e : doc) engine.OnEvent(e);
    std::printf("%8s %12.2f %16zu\n", eager ? "eager" : "lazy",
                timer.Seconds() * 1e3, engine.context().assignment.size());
  }
}

}  // namespace
}  // namespace spex

int main() {
  using namespace spex;
  std::printf("== Ablation E7: formula growth on wildcard closures with "
              "qualifiers (§V) ==\n");
  std::printf("Expected shape: DAG nodes grow polynomially with d and n "
              "(the factored\nrepresentation of Remark V.1), where a naive "
              "DNF would grow like d^n.\n");
  SweepQualifierCount();
  SweepDepth();
  EagerVsLazy();
  return 0;
}
