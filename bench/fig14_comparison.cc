// Reproduces Fig. 14: "Comparison between processors for small and
// medium-size documents".
//
// The paper runs four query classes on MONDIAL (1.2 MB, 24,184 elements,
// depth 5) and a WordNet excerpt (9.5 MB, 207,899 elements, depth 3),
// comparing SPEX against Saxon (XSLT) and Fxgrep — both of which build
// in-memory representations of the stream.  We substitute generated
// documents with the same shape and two baselines with the same cost model:
// a DOM evaluator (parse everything, then evaluate) and an X-Scan-style
// streaming NFA (classes 1 and 3 only; it cannot express qualifiers).
//
// Query classes (§VI):
//   1. simple structural, no nested results
//   2. structural qualifiers creating "future conditions"
//   3. structural queries creating nested results
//   4. structural qualifiers creating "past conditions"
//
// Expected shape (paper): SPEX is competitive on the small document and
// outperforms the in-memory processors on the medium one; the in-memory
// baseline pays the full parse+build cost for every query.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "bench_util.h"
#include "rpeq/parser.h"
#include "xml/dom.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

using bench::RunSpex;
using bench::SerializedMb;
using bench::Timer;

struct QueryClass {
  int id;
  std::string query;
};

struct Dataset {
  std::string name;
  std::string xml;  // every processor consumes serialized text, as in §VI
  GeneratorStats gen;
  std::vector<QueryClass> queries;
};

// SPEX: streamed parse -> transducer network, results on the fly.  The
// parser stamps interned label symbols through the engine's table, the
// production configuration.
bench::SpexRun RunSpexOnText(const Expr& query, const std::string& xml) {
  Timer timer;
  CountingResultSink sink;
  SpexEngine engine(query, &sink);
  XmlParserOptions options;
  options.symbols = engine.symbol_table();
  XmlParser parser(&engine, options);
  parser.Parse(xml);
  bench::SpexRun run;
  run.seconds = timer.Seconds();
  run.results = sink.results();
  run.stats = engine.ComputeStats();
  return run;
}

// DOM baseline: parse the whole text into a tree, then evaluate (the cost
// model of Saxon / Fxgrep in the paper).
double RunDomBaseline(const Expr& query, const std::string& xml,
                      int64_t* results) {
  Timer timer;
  Document doc;
  std::string error;
  if (!ParseXmlToDocument(xml, &doc, &error)) {
    std::fprintf(stderr, "DOM parse failed: %s\n", error.c_str());
    *results = -1;
    return timer.Seconds();
  }
  *results = static_cast<int64_t>(EvaluateOnDocument(query, doc).size());
  return timer.Seconds();
}

// X-Scan-style NFA: streamed parse -> automaton (no qualifiers).  Interns
// through its own table, like-for-like with the SPEX run.
double RunNfaBaseline(const Expr& query, const std::string& xml,
                      int64_t* results) {
  Timer timer;
  PathNfa nfa;
  std::string error;
  if (!nfa.Build(query, &error)) {
    *results = -1;
    return timer.Seconds();
  }
  SymbolTable symbols;
  nfa.ResolveSymbols(&symbols);
  NfaStreamEvaluator eval(&nfa);
  XmlParserOptions options;
  options.symbols = &symbols;
  XmlParser parser(&eval, options);
  parser.Parse(xml);
  *results = eval.match_count();
  return timer.Seconds();
}

// Appends one JSON record per query to *json (opened by main when --json was
// given; null otherwise).
void RunDataset(const Dataset& ds, double scale, std::FILE* json,
                bool* json_first) {
  std::printf("\n%s (scale %.2f): %.1f MB, %lld elements, max depth %d\n",
              ds.name.c_str(), scale,
              static_cast<double>(ds.xml.size()) / 1e6,
              static_cast<long long>(ds.gen.elements), ds.gen.max_depth);
  std::printf("%-4s %-38s %10s %12s %12s %9s\n", "cls", "query", "SPEX[s]",
              "DOM[s]", "NFA[s]", "results");
  bench::PrintRule(92);
  for (const QueryClass& qc : ds.queries) {
    ExprPtr query = MustParseRpeq(qc.query);
    bench::SpexRun spex = RunSpexOnText(*query, ds.xml);
    int64_t dom_results = 0;
    double dom_s = RunDomBaseline(*query, ds.xml, &dom_results);
    int64_t nfa_results = 0;
    double nfa_s = RunNfaBaseline(*query, ds.xml, &nfa_results);
    std::string nfa_text =
        nfa_results < 0 ? std::string("   (n/a)")
                        : std::to_string(nfa_s).substr(0, 8);
    std::printf("%-4d %-38s %10.3f %12.3f %12s %9lld\n", qc.id,
                qc.query.c_str(), spex.seconds, dom_s, nfa_text.c_str(),
                static_cast<long long>(spex.results));
    if (spex.results != dom_results) {
      std::printf("  !! result mismatch: SPEX %lld vs DOM %lld\n",
                  static_cast<long long>(spex.results),
                  static_cast<long long>(dom_results));
    }
    if (nfa_results >= 0 && nfa_results != spex.results) {
      std::printf("  !! result mismatch: SPEX %lld vs NFA %lld\n",
                  static_cast<long long>(spex.results),
                  static_cast<long long>(nfa_results));
    }
    if (json != nullptr) {
      const double events =
          static_cast<double>(ds.gen.events > 0 ? ds.gen.events : 1);
      std::fprintf(
          json,
          "%s  {\"benchmark\": \"fig14/%s/class%d\", \"query\": \"%s\", "
          "\"events_per_sec\": %.1f, \"bytes_per_event\": %.2f, "
          "\"peak_formula_nodes\": %lld, \"dom_seconds\": %.4f, "
          "\"nfa_seconds\": %.4f, \"results\": %lld}",
          *json_first ? "" : ",\n", ds.name.c_str(), qc.id, qc.query.c_str(),
          events / spex.seconds,
          static_cast<double>(ds.xml.size()) / events,
          static_cast<long long>(spex.stats.max_formula_nodes), dom_s,
          nfa_results < 0 ? -1.0 : nfa_s,
          static_cast<long long>(spex.results));
      *json_first = false;
    }
  }
}

}  // namespace
}  // namespace spex

int main(int argc, char** argv) {
  using namespace spex;
  // Paper-size documents by default (1.2 MB / 9.5 MB class machines parse
  // these in well under a second each); --scale shrinks or grows both.
  double scale = bench::FlagValue(argc, argv, "scale", 1.0);
  uint64_t seed = static_cast<uint64_t>(
      bench::FlagValue(argc, argv, "seed", 42));
  std::FILE* json = nullptr;
  bool json_first = true;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = std::fopen(argv[i + 1], "w");
      if (json == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", argv[i + 1]);
        return 1;
      }
      std::fprintf(json, "{\n  \"meta\": %s,\n  \"records\": [\n",
                   bench::MetaJson("fig14_comparison", "off").c_str());
    }
  }

  std::printf("== Fig. 14 reproduction: processor comparison ==\n");
  std::printf("SPEX = this library (streamed); DOM = in-memory baseline "
              "(Saxon/Fxgrep stand-in);\nNFA = X-Scan-style streaming "
              "automaton (no qualifiers).\n");

  Dataset mondial;
  mondial.name = "MONDIAL-like";
  {
    XmlWriter writer;
    mondial.gen = GenerateMondialLike(seed, scale, &writer);
    mondial.xml = writer.str();
  }
  mondial.queries = {
      {1, "_*.province.city"},
      {2, "_*.country[province].name"},
      {3, "_*._"},
      {4, "_*.country[province].religions"},
  };
  RunDataset(mondial, scale, json, &json_first);

  Dataset wordnet;
  wordnet.name = "WordNet-like";
  {
    XmlWriter writer;
    wordnet.gen = GenerateWordnetLike(seed, scale, &writer);
    wordnet.xml = writer.str();
  }
  wordnet.queries = {
      {1, "_*.Noun.wordForm"},
      {2, "_*.Noun[wordForm]"},
      {3, "_*._"},
      {4, "_*.Noun[wordForm].gloss"},
  };
  RunDataset(wordnet, scale, json, &json_first);

  if (json != nullptr) {
    std::fprintf(json, "\n]}\n");
    std::fclose(json);
  }

  std::printf("\npeak RSS: %.1f MB\n", bench::PeakRssMb());
  std::printf("\nPaper reference (Fig. 14, absolute 2002 numbers not "
              "comparable; shape is):\n"
              "  MONDIAL  1.2MB : SPEX ~2-4s,  Saxon ~2-7s,  Fxgrep ~2-9s\n"
              "  WordNet  9.5MB : SPEX ~20-40s, Saxon ~30-80s, Fxgrep "
              "~40-90s\n"
              "  Expected shape: SPEX competitive on the small document and "
              "ahead on the medium one.\n");
  return 0;
}
