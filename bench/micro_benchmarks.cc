// Engineering micro-benchmarks (google-benchmark): XML parsing throughput,
// per-construct engine throughput, formula operations, DOM construction and
// the query compiler.  Not a paper figure — these guard the constants behind
// the §V asymptotics.

#include <benchmark/benchmark.h>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/dom.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"
#include "xml/content_model.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

const std::vector<StreamEvent>& MondialEvents() {
  static const std::vector<StreamEvent>* events = [] {
    auto* v = new std::vector<StreamEvent>(GenerateToVector(
        [](EventSink* s) { GenerateMondialLike(42, 0.2, s); }));
    return v;
  }();
  return *events;
}

const std::string& MondialXml() {
  static const std::string* xml =
      new std::string(EventsToXml(MondialEvents()));
  return *xml;
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& xml = MondialXml();
  for (auto _ : state) {
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(xml);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(MondialXml().size()));
}
BENCHMARK(BM_XmlParse);

void BM_DomBuild(benchmark::State& state) {
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    DomBuilder builder;
    for (const StreamEvent& e : events) builder.OnEvent(e);
    Document doc = builder.TakeDocument();
    benchmark::DoNotOptimize(doc.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_DomBuild);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    ParseResult r = ParseRpeq("_*.country[province[city]].name|_*.x.y?");
    benchmark::DoNotOptimize(r.expr.get());
  }
}
BENCHMARK(BM_QueryParse);

void BM_Compile(benchmark::State& state) {
  ExprPtr query = MustParseRpeq("_*.country[province[city]].name");
  for (auto _ : state) {
    RunContext context;
    CountingResultSink sink;
    CompiledNetwork net = CompileToNetwork(*query, &sink, &context);
    benchmark::DoNotOptimize(net.network.node_count());
  }
}
BENCHMARK(BM_Compile);

void RunEngineBenchmark(benchmark::State& state, const char* query_text) {
  ExprPtr query = MustParseRpeq(query_text);
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    CountingResultSink sink;
    SpexEngine engine(*query, &sink);
    for (const StreamEvent& e : events) engine.OnEvent(e);
    benchmark::DoNotOptimize(sink.results());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}

void BM_EngineChildChain(benchmark::State& state) {
  RunEngineBenchmark(state, "mondial.country.name");
}
BENCHMARK(BM_EngineChildChain);

void BM_EngineDescendant(benchmark::State& state) {
  RunEngineBenchmark(state, "_*.city");
}
BENCHMARK(BM_EngineDescendant);

void BM_EngineQualifier(benchmark::State& state) {
  RunEngineBenchmark(state, "_*.country[province].name");
}
BENCHMARK(BM_EngineQualifier);

void BM_EngineNestedResults(benchmark::State& state) {
  RunEngineBenchmark(state, "_*._");
}
BENCHMARK(BM_EngineNestedResults);

void BM_NfaBaseline(benchmark::State& state) {
  ExprPtr query = MustParseRpeq("_*.city");
  const std::vector<StreamEvent>& events = MondialEvents();
  PathNfa nfa;
  std::string error;
  nfa.Build(*query, &error);
  for (auto _ : state) {
    NfaStreamEvaluator eval(&nfa);
    for (const StreamEvent& e : events) eval.OnEvent(e);
    benchmark::DoNotOptimize(eval.match_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_NfaBaseline);

void BM_StreamingValidator(benchmark::State& state) {
  Schema schema;
  std::string error;
  bool ok = ParseSchema(
      "root=mondial\nmondial=country*\n"
      "country=name,population,province*,religions*\n"
      "province=name,city*\ncity=name\nname=TEXT\npopulation=TEXT\n"
      "religions=TEXT\n",
      &schema, &error);
  if (!ok) state.SkipWithError(error.c_str());
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    StreamingValidator validator(&schema);
    for (const StreamEvent& e : events) validator.OnEvent(e);
    benchmark::DoNotOptimize(validator.valid());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamingValidator);

void BM_FormulaOrChain(benchmark::State& state) {
  for (auto _ : state) {
    Formula f = Formula::Var(0);
    for (VarId v = 1; v < 64; ++v) f = Formula::Or(f, Formula::Var(v));
    benchmark::DoNotOptimize(f.NodeCount());
  }
}
BENCHMARK(BM_FormulaOrChain);

void BM_FormulaEvaluate(benchmark::State& state) {
  Formula f = Formula::Var(0);
  Assignment a;
  for (VarId v = 1; v < 64; ++v) {
    f = Formula::Or(Formula::And(f, Formula::Var(v)), Formula::Var(v + 100));
    if (v % 2 == 0) a.Set(v, v % 4 == 0);
  }
  for (auto _ : state) {
    Truth t = f.Evaluate(a);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FormulaEvaluate);

void BM_FormulaSimplify(benchmark::State& state) {
  Formula f = Formula::Var(0);
  Assignment a;
  for (VarId v = 1; v < 64; ++v) {
    f = Formula::Or(Formula::And(f, Formula::Var(v)), Formula::Var(v + 100));
    if (v % 2 == 0) a.Set(v, false);
  }
  for (auto _ : state) {
    Formula g = f.PruneFalse(a);
    benchmark::DoNotOptimize(g.NodeCount());
  }
}
BENCHMARK(BM_FormulaSimplify);

}  // namespace
}  // namespace spex

BENCHMARK_MAIN();
