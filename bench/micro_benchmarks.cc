// Engineering micro-benchmarks (google-benchmark): XML parsing throughput,
// per-construct engine throughput, formula operations, DOM construction and
// the query compiler.  Not a paper figure — these guard the constants behind
// the §V asymptotics.
//
// With `--json <path>` the binary instead runs a fixed engine-workload suite
// (label-heavy DMOZ-like streams among them) and writes machine-readable
// records {benchmark, events_per_sec, bytes_per_event, peak_formula_nodes,
// allocs_per_event, results} — the perf-trajectory format committed as
// BENCH_PR<n>.json.  Heap allocations are counted through the overridden
// global operator new below, so the records also guard the zero-allocation
// steady-state claim for the network routing path.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

// ---------------------------------------------------------------------------
// Global allocation counting.  Every heap allocation in the process bumps the
// counter; the JSON harness samples it around the engine feed loop to report
// allocations per document message.  Counters are atomic because
// google-benchmark may allocate from helper threads.

static std::atomic<int64_t> g_alloc_count{0};

// The replacement operators pair malloc with free correctly; GCC flags the
// mix of new-expression and free-based implementation anyway.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include <algorithm>

#include "baseline/dom_evaluator.h"
#include "baseline/nfa_evaluator.h"
#include "bench_util.h"
#include "obs/sampling_profiler.h"
#include "xml/simd_scan.h"
#include "rpeq/parser.h"
#include "spex/engine.h"
#include "xml/dom.h"
#include "xml/generators.h"
#include "xml/xml_parser.h"
#include "xml/content_model.h"
#include "xml/xml_writer.h"

namespace spex {
namespace {

const std::vector<StreamEvent>& MondialEvents() {
  static const std::vector<StreamEvent>* events = [] {
    auto* v = new std::vector<StreamEvent>(GenerateToVector(
        [](EventSink* s) { GenerateMondialLike(42, 0.2, s); }));
    return v;
  }();
  return *events;
}

const std::string& MondialXml() {
  static const std::string* xml =
      new std::string(EventsToXml(MondialEvents()));
  return *xml;
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& xml = MondialXml();
  for (auto _ : state) {
    RecordingEventSink sink;
    XmlParser parser(&sink);
    bool ok = parser.Parse(xml);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(MondialXml().size()));
}
BENCHMARK(BM_XmlParse);

void BM_DomBuild(benchmark::State& state) {
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    DomBuilder builder;
    for (const StreamEvent& e : events) builder.OnEvent(e);
    Document doc = builder.TakeDocument();
    benchmark::DoNotOptimize(doc.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_DomBuild);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    ParseResult r = ParseRpeq("_*.country[province[city]].name|_*.x.y?");
    benchmark::DoNotOptimize(r.expr.get());
  }
}
BENCHMARK(BM_QueryParse);

void BM_Compile(benchmark::State& state) {
  ExprPtr query = MustParseRpeq("_*.country[province[city]].name");
  for (auto _ : state) {
    RunContext context;
    CountingResultSink sink;
    CompiledNetwork net = CompileToNetwork(*query, &sink, &context);
    benchmark::DoNotOptimize(net.network.node_count());
  }
}
BENCHMARK(BM_Compile);

void RunEngineBenchmark(benchmark::State& state, const char* query_text) {
  ExprPtr query = MustParseRpeq(query_text);
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    CountingResultSink sink;
    SpexEngine engine(*query, &sink);
    for (const StreamEvent& e : events) engine.OnEvent(e);
    benchmark::DoNotOptimize(sink.results());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}

void BM_EngineChildChain(benchmark::State& state) {
  RunEngineBenchmark(state, "mondial.country.name");
}
BENCHMARK(BM_EngineChildChain);

void BM_EngineDescendant(benchmark::State& state) {
  RunEngineBenchmark(state, "_*.city");
}
BENCHMARK(BM_EngineDescendant);

void BM_EngineQualifier(benchmark::State& state) {
  RunEngineBenchmark(state, "_*.country[province].name");
}
BENCHMARK(BM_EngineQualifier);

void BM_EngineNestedResults(benchmark::State& state) {
  RunEngineBenchmark(state, "_*._");
}
BENCHMARK(BM_EngineNestedResults);

void BM_NfaBaseline(benchmark::State& state) {
  ExprPtr query = MustParseRpeq("_*.city");
  const std::vector<StreamEvent>& events = MondialEvents();
  PathNfa nfa;
  std::string error;
  nfa.Build(*query, &error);
  for (auto _ : state) {
    NfaStreamEvaluator eval(&nfa);
    for (const StreamEvent& e : events) eval.OnEvent(e);
    benchmark::DoNotOptimize(eval.match_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_NfaBaseline);

void BM_StreamingValidator(benchmark::State& state) {
  Schema schema;
  std::string error;
  bool ok = ParseSchema(
      "root=mondial\nmondial=country*\n"
      "country=name,population,province*,religions*\n"
      "province=name,city*\ncity=name\nname=TEXT\npopulation=TEXT\n"
      "religions=TEXT\n",
      &schema, &error);
  if (!ok) state.SkipWithError(error.c_str());
  const std::vector<StreamEvent>& events = MondialEvents();
  for (auto _ : state) {
    StreamingValidator validator(&schema);
    for (const StreamEvent& e : events) validator.OnEvent(e);
    benchmark::DoNotOptimize(validator.valid());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamingValidator);

void BM_FormulaOrChain(benchmark::State& state) {
  for (auto _ : state) {
    Formula f = Formula::Var(0);
    for (VarId v = 1; v < 64; ++v) f = Formula::Or(f, Formula::Var(v));
    benchmark::DoNotOptimize(f.NodeCount());
  }
}
BENCHMARK(BM_FormulaOrChain);

void BM_FormulaEvaluate(benchmark::State& state) {
  Formula f = Formula::Var(0);
  Assignment a;
  for (VarId v = 1; v < 64; ++v) {
    f = Formula::Or(Formula::And(f, Formula::Var(v)), Formula::Var(v + 100));
    if (v % 2 == 0) a.Set(v, v % 4 == 0);
  }
  for (auto _ : state) {
    Truth t = f.Evaluate(a);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FormulaEvaluate);

void BM_FormulaSimplify(benchmark::State& state) {
  Formula f = Formula::Var(0);
  Assignment a;
  for (VarId v = 1; v < 64; ++v) {
    f = Formula::Or(Formula::And(f, Formula::Var(v)), Formula::Var(v + 100));
    if (v % 2 == 0) a.Set(v, false);
  }
  for (auto _ : state) {
    Formula g = f.PruneFalse(a);
    benchmark::DoNotOptimize(g.NodeCount());
  }
}
BENCHMARK(BM_FormulaSimplify);

}  // namespace

// ---------------------------------------------------------------------------
// JSON workload suite (--json <path>).

namespace benchjson {
namespace {

struct Workload {
  const char* name;
  const char* query;
  // Fills the event stream; called once, outside all timing.
  std::vector<StreamEvent> (*generate)();
};

std::vector<StreamEvent> DmozStructure() {
  return GenerateToVector(
      [](EventSink* s) { GenerateDmozLike(42, 0.05, /*content=*/false, s); });
}

std::vector<StreamEvent> DmozContent() {
  return GenerateToVector(
      [](EventSink* s) { GenerateDmozLike(42, 0.02, /*content=*/true, s); });
}

std::vector<StreamEvent> Mondial() {
  return GenerateToVector(
      [](EventSink* s) { GenerateMondialLike(42, 1.0, s); });
}

std::vector<StreamEvent> Wordnet() {
  return GenerateToVector(
      [](EventSink* s) { GenerateWordnetLike(42, 0.25, s); });
}

// The workload grid: DMOZ-like streams are the label-heavy ones the perf
// trajectory tracks (flat, millions of short-label elements at full scale).
const Workload kWorkloads[] = {
    {"dmoz_child_chain", "RDF.Topic.Title", DmozStructure},
    {"dmoz_no_match", "RDF.Topic.absent", DmozStructure},
    {"dmoz_descendant", "_*.editor", DmozStructure},
    {"dmoz_qualifier_past", "_*.Topic[editor].newsGroup", DmozStructure},
    {"dmoz_content_links", "RDF.Topic.link", DmozContent},
    {"mondial_qualifier", "_*.country[province].name", Mondial},
    {"mondial_nested", "_*._", Mondial},
    {"wordnet_qualifier", "_*.Noun[wordForm].gloss", Wordnet},
};

int64_t SerializedBytes(const std::vector<StreamEvent>& events) {
  int64_t bytes = 0;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kStartElement:
        bytes += static_cast<int64_t>(e.name.size()) + 2;
        break;
      case EventKind::kEndElement:
        bytes += static_cast<int64_t>(e.name.size()) + 3;
        break;
      case EventKind::kText:
        bytes += static_cast<int64_t>(e.text.size());
        break;
      default:
        break;
    }
  }
  return bytes;
}

struct Record {
  std::string name;
  double events_per_sec = 0;
  double bytes_per_event = 0;
  int64_t peak_formula_nodes = 0;
  double allocs_per_event = 0;
  int64_t results = 0;
};

// Observe level applied to every workload engine (--observe=off|counters|
// full); BENCH_PR2.json pairs an off run against a full run to price the
// observability layer.
ObserveLevel g_observe = ObserveLevel::kOff;
// --profile: attach the per-node cost profiler instead (observe stays off).
// Recorded as the pseudo-level "profile" so BENCH_PR3.json prices the
// EXPLAIN/PROFILE instrumentation alongside off/full.
bool g_profile = false;
// --sampling=N: attach the batch-granular sampling profiler (obs/
// sampling_profiler.h) at period N.  The observe name stays "off" — the
// whole point is pricing the always-on sampler against observe=off records,
// which is how the PR8 bench gate proves the ≤2% overhead budget.
int g_sampling = 0;

const char* ObserveName() {
  if (g_profile) return "profile";
  switch (g_observe) {
    case ObserveLevel::kOff: return "off";
    case ObserveLevel::kCounters: return "counters";
    case ObserveLevel::kFull: return "full";
  }
  return "?";
}

// Feeds the stream in EngineOptions::batch_size chunks, exactly as XmlParser
// delivers in production (DESIGN.md §11); the engine takes the batched
// network path for batchable queries and falls back per-event otherwise.
void FeedStream(SpexEngine* engine, const std::vector<StreamEvent>& events,
                int batch_size) {
  const size_t step = batch_size > 1 ? static_cast<size_t>(batch_size) : 1;
  if (step <= 1) {
    for (const StreamEvent& e : events) engine->OnEvent(e);
    return;
  }
  for (size_t i = 0; i < events.size(); i += step) {
    engine->OnEventBatch(events.data() + i,
                         std::min(step, events.size() - i));
  }
}

Record RunWorkload(const Workload& w) {
  ExprPtr query = MustParseRpeq(w.query);
  std::vector<StreamEvent> events = w.generate();
  const int64_t n = static_cast<int64_t>(events.size());
  Record rec;
  rec.name = w.name;
  rec.bytes_per_event =
      static_cast<double>(SerializedBytes(events)) / static_cast<double>(n);

  // Stamp interned label symbols once, as XmlParser does at parse time in
  // the production configuration; the engines share the table through
  // EngineOptions::symbols.
  SymbolTable symbols;
  for (StreamEvent& e : events) {
    if (e.IsElement()) e.label = symbols.Intern(e.name);
  }
  EngineOptions options;
  options.symbols = &symbols;
  options.observe = g_observe;
  options.profile = g_profile;

  // One process-wide sampler (as EnginePool holds one) so --sampling prices
  // the production wiring: relaxed-load draw per batch, instrumented path on
  // the stride.
  static obs::SamplingProfiler sampler(
      obs::SamplingProfiler::Options{g_sampling});

  // Warm-up run: faults in the event vector and fills allocator caches so
  // the measured runs see steady state.
  {
    CountingResultSink sink;
    SpexEngine engine(*query, &sink, options);
    if (g_sampling > 0) engine.SetBatchSampler(&sampler);
    FeedStream(&engine, events, options.batch_size);
    rec.results = sink.results();
  }

  // Allocation-counting run: samples the global counter around the feed loop
  // only (engine construction excluded), i.e. the per-message routing cost.
  {
    CountingResultSink sink;
    SpexEngine engine(*query, &sink, options);
    if (g_sampling > 0) engine.SetBatchSampler(&sampler);
    const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
    FeedStream(&engine, events, options.batch_size);
    const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
    rec.allocs_per_event =
        static_cast<double>(after - before) / static_cast<double>(n);
    rec.peak_formula_nodes = engine.ComputeStats().max_formula_nodes;
  }

  // Timed runs: best of `reps`, each over the full stream.
  double best = 1e100;
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    CountingResultSink sink;
    SpexEngine engine(*query, &sink, options);
    if (g_sampling > 0) engine.SetBatchSampler(&sampler);
    auto start = std::chrono::steady_clock::now();
    FeedStream(&engine, events, options.batch_size);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (secs < best) best = secs;
  }
  rec.events_per_sec = static_cast<double>(n) / best;
  return rec;
}

// Parser-only record: serializes the content-bearing DMOZ stream back to XML
// text once, then measures XmlParser tokenization throughput into a
// discarding sink — the SWAR/SIMD structural scan (simd_scan.h) with the
// transducer network out of the picture.  bytes_per_event here is real
// markup bytes per emitted document message.
Record RunXmlScan() {
  class NullSink : public EventSink {
   public:
    void OnEvent(const StreamEvent&) override {}
    void OnEventBatch(const StreamEvent*, size_t) override {}
  };
  const std::string xml = EventsToXml(DmozContent());
  Record rec;
  rec.name = "xml_scan";  // backend-independent name; the active backend is
                          // reported on stderr so matrix runs stay comparable
  std::fprintf(stderr, "xml_scan: scanner backend = %s\n",
               scan::BackendName());
  int64_t n = 0;
  auto parse_once = [&xml](int64_t* events_out) {
    NullSink sink;
    SymbolTable symbols;
    XmlParserOptions po;
    po.symbols = &symbols;
    XmlParser parser(&sink, po);
    if (!parser.Parse(xml)) {
      std::fprintf(stderr, "xml_scan: parse failed: %s\n",
                   parser.error().c_str());
      std::abort();
    }
    if (events_out != nullptr) *events_out = parser.events_emitted();
  };
  parse_once(&n);  // warm-up
  {
    const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
    parse_once(nullptr);
    const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
    rec.allocs_per_event =
        static_cast<double>(after - before) / static_cast<double>(n);
  }
  double best = 1e100;
  for (int r = 0; r < 3; ++r) {
    auto start = std::chrono::steady_clock::now();
    parse_once(nullptr);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (secs < best) best = secs;
  }
  rec.events_per_sec = static_cast<double>(n) / best;
  rec.bytes_per_event =
      static_cast<double>(xml.size()) / static_cast<double>(n);
  rec.results = 0;
  return rec;
}

int RunJsonBenchmarks(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"meta\": %s,\n  \"records\": [\n",
               bench::MetaJson("micro_benchmarks", ObserveName()).c_str());
  bool first = true;
  auto emit = [&](const Record& rec) {
    std::fprintf(stderr, "%-24s %12.0f ev/s  %6.1f B/ev  %5lld peak-nodes  "
                 "%8.4f allocs/ev  %lld results  [observe=%s]\n",
                 rec.name.c_str(), rec.events_per_sec, rec.bytes_per_event,
                 static_cast<long long>(rec.peak_formula_nodes),
                 rec.allocs_per_event, static_cast<long long>(rec.results),
                 ObserveName());
    std::fprintf(
        f,
        "%s  {\"benchmark\": \"%s\", \"observe\": \"%s\", "
        "\"events_per_sec\": %.1f, "
        "\"bytes_per_event\": %.2f, \"peak_formula_nodes\": %lld, "
        "\"allocs_per_event\": %.4f, \"results\": %lld}",
        first ? "" : ",\n", rec.name.c_str(), ObserveName(),
        rec.events_per_sec,
        rec.bytes_per_event, static_cast<long long>(rec.peak_formula_nodes),
        rec.allocs_per_event, static_cast<long long>(rec.results));
    first = false;
  };
  for (const Workload& w : kWorkloads) emit(RunWorkload(w));
  emit(RunXmlScan());
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return 0;
}

}  // namespace
}  // namespace benchjson
}  // namespace spex

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--observe=", 10) == 0) {
      if (!spex::ParseObserveLevel(argv[i] + 10,
                                   &spex::benchjson::g_observe)) {
        std::fprintf(stderr, "bad --observe level: %s\n", argv[i] + 10);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      spex::benchjson::g_profile = true;
    } else if (std::strncmp(argv[i], "--sampling=", 11) == 0) {
      spex::benchjson::g_sampling = std::atoi(argv[i] + 11);
      if (spex::benchjson::g_sampling < 0) {
        std::fprintf(stderr, "bad --sampling period: %s\n", argv[i] + 11);
        return 1;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) {
    return spex::benchjson::RunJsonBenchmarks(json_path);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
